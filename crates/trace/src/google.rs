//! Synthetic Google-cluster-like traces (§6.6.2's input).
//!
//! The paper replays the public Google cluster traces: 29 days, 12 583
//! servers, thousands of jobs each made of tasks with *booked* resource
//! capacities and periodically sampled *actual* utilization. What the
//! energy comparison is sensitive to is not the exact trace bytes but its
//! statistical shape:
//!
//! - heavy-tailed task durations (most tasks are short, a few run for
//!   days);
//! - quantized, small booked-CPU requests with a large booked-vs-used gap;
//! - a sizable population of near-idle tasks (what Oasis partially
//!   migrates);
//! - a diurnal load swing;
//! - the booked memory : booked CPU ratio — 1:1-ish in the original trace,
//!   and exactly the knob the paper turns to build its "modified" set
//!   ("we built a second set in which the memory demand is twice the CPU
//!   demand as the actual trends reveal").
//!
//! [`ClusterTrace::generate`] produces such a trace deterministically from
//! a seed; [`ClusterTrace::modified`] applies the paper's transform.

use std::sync::{Arc, OnceLock};

use zombieland_simcore::{DetRng, SimDuration, SimTime};

/// Configuration of a synthetic trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Number of servers the trace is sized for (capacity normalization:
    /// one server = 1.0 CPU = 1.0 memory).
    pub servers: u32,
    /// Trace length (the Google trace is 29 days).
    pub duration: SimDuration,
    /// RNG seed; same seed → identical trace.
    pub seed: u64,
    /// Booked memory : booked CPU ratio (1.0 ≈ original trace; 2.0 =
    /// the paper's modified set).
    pub mem_cpu_ratio: f64,
    /// Target average booked-CPU utilization of the cluster (the Google
    /// trace books ~60 % of CPU on average).
    pub avg_utilization: f64,
}

impl TraceConfig {
    /// The paper's full-scale setup (29 days, 12 583 servers).
    pub fn paper_scale(seed: u64) -> Self {
        TraceConfig {
            servers: 12_583,
            duration: SimDuration::from_days(29),
            seed,
            mem_cpu_ratio: 1.0,
            avg_utilization: 0.6,
        }
    }

    /// A laptop-scale setup preserving the statistics (for tests and quick
    /// runs).
    pub fn small(seed: u64) -> Self {
        TraceConfig {
            servers: 100,
            duration: SimDuration::from_days(3),
            seed,
            mem_cpu_ratio: 1.0,
            avg_utilization: 0.6,
        }
    }
}

/// One task (the paper treats each task as a VM/container).
#[derive(Clone, Copy, Debug)]
pub struct TaskSpec {
    /// Job the task belongs to.
    pub job: u32,
    /// Index within the job.
    pub index: u32,
    /// Start time.
    pub start: SimTime,
    /// Termination time.
    pub end: SimTime,
    /// Booked CPU (fraction of one server).
    pub cpu_booked: f64,
    /// Booked memory (fraction of one server).
    pub mem_booked: f64,
    /// Average actual CPU use (≤ booked).
    pub cpu_used: f64,
    /// Average actual memory use (≤ booked).
    pub mem_used: f64,
}

impl TaskSpec {
    /// Task lifetime.
    pub fn lifetime(&self) -> SimDuration {
        self.end - self.start
    }

    /// Whether the task is effectively idle (the Oasis criterion:
    /// CPU utilization below 1 % of a server).
    pub fn is_idle(&self) -> bool {
        self.cpu_used < 0.01
    }
}

/// A trace event for chronological replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Task `task_idx` starts.
    Arrive,
    /// Task `task_idx` terminates.
    Depart,
}

/// `(time, kind, index into tasks())`.
pub type TraceEvent = (SimTime, EventKind, usize);

/// The chronological replay order of a trace, held as two sorted task
/// permutations instead of a materialized event list.
///
/// A 29-day full-scale trace has ~50 M events; as `Vec<TraceEvent>`
/// (24 bytes each) the old cache cost well over a gigabyte per trace.
/// Storing only `u32` task indices — arrivals sorted by `(start, task)`,
/// departures by `(end, task)` — is 8 bytes per task total, and the
/// chronological merge (departures first at equal instants) is
/// reconstructed on the fly by [`EventStream`].
#[derive(Debug)]
pub struct EventOrder {
    /// Task indices sorted by `(start, task)`.
    by_start: Vec<u32>,
    /// Task indices sorted by `(end, task)`.
    by_end: Vec<u32>,
}

/// A complete synthetic trace.
#[derive(Clone, Debug)]
pub struct ClusterTrace {
    config: TraceConfig,
    tasks: Vec<TaskSpec>,
    /// Replay order, built lazily on the first [`Self::event_stream`]
    /// call and shared by every simulation over this trace afterwards —
    /// including clones and [`Self::modified`] derivatives, which keep
    /// the same start/end times and so the same order: the `Arc` makes a
    /// clone share the built cache instead of recomputing the sort.
    order_cache: OnceLock<Arc<EventOrder>>,
}

/// Streaming iterator over a trace's events in replay order: ascending
/// time, departures before arrivals at equal instants (capacity frees
/// first), ties within a kind by task index. Equivalent to iterating the
/// old fully-materialized event list sorted by
/// `(time, kind != Depart, task)`, without ever building it.
pub struct EventStream<'a> {
    tasks: &'a [TaskSpec],
    order: Arc<EventOrder>,
    /// Cursor into `order.by_start`.
    arrive: usize,
    /// Cursor into `order.by_end`.
    depart: usize,
}

impl Iterator for EventStream<'_> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        let a = self.order.by_start.get(self.arrive).map(|&i| i as usize);
        let d = self.order.by_end.get(self.depart).map(|&i| i as usize);
        match (a, d) {
            (None, None) => None,
            // Departures win ties so capacity frees before same-instant
            // placements — the `kind != Depart` term of the old sort key.
            (Some(ai), Some(di)) if self.tasks[ai].start < self.tasks[di].end => {
                self.arrive += 1;
                Some((self.tasks[ai].start, EventKind::Arrive, ai))
            }
            (Some(_), Some(di)) | (None, Some(di)) => {
                self.depart += 1;
                Some((self.tasks[di].end, EventKind::Depart, di))
            }
            (Some(ai), None) => {
                self.arrive += 1;
                Some((self.tasks[ai].start, EventKind::Arrive, ai))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.tasks.len() * 2 - self.arrive - self.depart;
        (left, Some(left))
    }
}

impl ExactSizeIterator for EventStream<'_> {}

/// Google-style quantized CPU request sizes (fractions of a server) and
/// their sampling weights (small requests dominate).
const CPU_QUANTA: [(f64, u32); 5] = [(0.031, 35), (0.062, 30), (0.125, 20), (0.25, 10), (0.5, 5)];

impl ClusterTrace {
    /// Generates a trace for `config`.
    ///
    /// Tasks are emitted until their aggregate booked CPU-time integral
    /// reaches `avg_utilization × servers × duration`, which pins the mean
    /// cluster load; arrival times follow a diurnal pattern and durations
    /// a Pareto tail.
    pub fn generate(config: TraceConfig) -> Self {
        let mut rng = DetRng::new(config.seed);
        let horizon = config.duration.as_secs_f64();
        let target_integral = config.avg_utilization * config.servers as f64 * horizon;

        let mut tasks = Vec::new();
        let mut integral = 0.0;
        let mut job = 0u32;
        while integral < target_integral {
            // One job: a geometric number of similar tasks.
            let fanout = 1 + rng.exponential(0.45) as u32;
            let cpu_quantum = Self::sample_cpu(&mut rng);
            let start_s = Self::sample_diurnal_start(&mut rng, horizon);
            for index in 0..fanout {
                // Pareto durations: median ~17 min, long tail to days.
                let dur_s = rng.pareto(600.0, 1.1).min(horizon * 1.5);
                let start = SimTime::ZERO + SimDuration::from_secs_f64(start_s);
                let end_s = (start_s + dur_s).min(horizon);
                let end = SimTime::ZERO + SimDuration::from_secs_f64(end_s);
                if end_s - start_s < 1.0 {
                    continue;
                }
                let cpu_booked = cpu_quantum;
                let mem_noise = (rng.range_f64(-0.5, 0.5)).exp();
                let mem_booked = (cpu_booked * config.mem_cpu_ratio * mem_noise).clamp(0.004, 1.0);
                // ~20 % of tasks are near-idle; the rest use 20–90 % of
                // their booking.
                let cpu_use_frac = if rng.chance(0.2) {
                    rng.range_f64(0.0, 0.15)
                } else {
                    rng.range_f64(0.2, 0.9)
                };
                let mem_use_frac = rng.range_f64(0.4, 0.95);
                tasks.push(TaskSpec {
                    job,
                    index,
                    start,
                    end,
                    cpu_booked,
                    mem_booked,
                    cpu_used: cpu_booked * cpu_use_frac,
                    mem_used: mem_booked * mem_use_frac,
                });
                integral += cpu_booked * (end_s - start_s);
            }
            job += 1;
        }
        ClusterTrace {
            config,
            tasks,
            order_cache: OnceLock::new(),
        }
    }

    fn sample_cpu(rng: &mut DetRng) -> f64 {
        let total: u32 = CPU_QUANTA.iter().map(|(_, w)| w).sum();
        let mut pick = rng.below(total as u64) as u32;
        for (q, w) in CPU_QUANTA {
            if pick < w {
                return q;
            }
            pick -= w;
        }
        CPU_QUANTA[0].0
    }

    /// Start times follow a day/night swing: acceptance-rejection against
    /// `1 + 0.35·sin(2πt/day)`.
    fn sample_diurnal_start(rng: &mut DetRng, horizon: f64) -> f64 {
        const DAY: f64 = 86_400.0;
        loop {
            let t = rng.f64() * horizon;
            let weight = 1.0 + 0.35 * (2.0 * std::f64::consts::PI * t / DAY).sin();
            if rng.f64() * 1.35 < weight {
                return t;
            }
        }
    }

    /// The paper's modified set: booked/used memory rescaled so memory
    /// demand is twice CPU demand.
    pub fn modified(&self) -> ClusterTrace {
        let mut config = self.config;
        config.mem_cpu_ratio = 2.0;
        let scale = 2.0 / self.config.mem_cpu_ratio;
        let tasks = self
            .tasks
            .iter()
            .map(|t| TaskSpec {
                mem_booked: (t.mem_booked * scale).min(1.0),
                mem_used: (t.mem_used * scale).min(1.0),
                ..*t
            })
            .collect();
        // The transform keeps every start/end time, so the replay order
        // is the parent's: build it (if not already built) and share the
        // `Arc` instead of re-sorting per derived trace.
        let order_cache = OnceLock::new();
        let _ = order_cache.set(self.event_order());
        ClusterTrace {
            config,
            tasks,
            order_cache,
        }
    }

    /// Builds a trace from explicit parts (trace import, tests).
    pub fn from_parts(config: TraceConfig, tasks: Vec<TaskSpec>) -> ClusterTrace {
        ClusterTrace {
            config,
            tasks,
            order_cache: OnceLock::new(),
        }
    }

    /// The generation configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// All tasks, in generation order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// The trace's replay order (see [`EventOrder`]).
    ///
    /// Built once per trace family and cached: grid experiments simulate
    /// the same trace for every policy×profile cell, and clones /
    /// [`Self::modified`] derivatives share the same `Arc` — the two
    /// sorts are never repaid per cell, per worker thread, or per
    /// derived trace.
    pub fn event_order(&self) -> Arc<EventOrder> {
        Arc::clone(self.order_cache.get_or_init(|| {
            assert!(
                u32::try_from(self.tasks.len()).is_ok(),
                "u32 task indices cover any realistic trace"
            );
            let mut by_start: Vec<u32> = (0..self.tasks.len() as u32).collect();
            let mut by_end = by_start.clone();
            by_start.sort_unstable_by_key(|&i| (self.tasks[i as usize].start, i));
            by_end.sort_unstable_by_key(|&i| (self.tasks[i as usize].end, i));
            Arc::new(EventOrder { by_start, by_end })
        }))
    }

    /// Total number of replay events (one arrival and one departure per
    /// task).
    pub fn events_len(&self) -> usize {
        self.tasks.len() * 2
    }

    /// Streams the trace's events in replay order without materializing
    /// them — see [`EventStream`] for the exact ordering contract.
    pub fn event_stream(&self) -> EventStream<'_> {
        EventStream {
            tasks: &self.tasks,
            order: self.event_order(),
            arrive: 0,
            depart: 0,
        }
    }

    /// Average concurrent booked CPU, in servers.
    pub fn avg_booked_cpu(&self) -> f64 {
        let horizon = self.config.duration.as_secs_f64();
        self.tasks
            .iter()
            .map(|t| t.cpu_booked * t.lifetime().as_secs_f64())
            .sum::<f64>()
            / horizon
    }

    /// Average concurrent booked memory, in servers.
    pub fn avg_booked_mem(&self) -> f64 {
        let horizon = self.config.duration.as_secs_f64();
        self.tasks
            .iter()
            .map(|t| t.mem_booked * t.lifetime().as_secs_f64())
            .sum::<f64>()
            / horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = ClusterTrace::generate(TraceConfig::small(7));
        let b = ClusterTrace::generate(TraceConfig::small(7));
        assert_eq!(a.tasks().len(), b.tasks().len());
        assert_eq!(a.tasks()[0].cpu_booked, b.tasks()[0].cpu_booked);
        let c = ClusterTrace::generate(TraceConfig::small(8));
        assert_ne!(a.tasks().len(), c.tasks().len());
    }

    #[test]
    fn hits_target_utilization() {
        let t = ClusterTrace::generate(TraceConfig::small(1));
        let avg = t.avg_booked_cpu() / t.config().servers as f64;
        assert!((avg - 0.6).abs() < 0.1, "avg booked cpu {avg}");
    }

    #[test]
    fn mem_cpu_ratio_respected() {
        let t = ClusterTrace::generate(TraceConfig::small(2));
        let ratio = t.avg_booked_mem() / t.avg_booked_cpu();
        // Log-normal noise is mean-biased above 1; accept a broad band
        // around 1.
        assert!((0.7..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn modified_doubles_memory_demand() {
        let t = ClusterTrace::generate(TraceConfig::small(3));
        let m = t.modified();
        let r0 = t.avg_booked_mem() / t.avg_booked_cpu();
        let r1 = m.avg_booked_mem() / m.avg_booked_cpu();
        assert!(r1 / r0 > 1.8, "{r0} -> {r1}");
        assert_eq!(m.tasks().len(), t.tasks().len());
        // CPU side untouched.
        assert_eq!(m.avg_booked_cpu(), t.avg_booked_cpu());
        // Bookings stay within a machine.
        assert!(m.tasks().iter().all(|t| t.mem_booked <= 1.0));
    }

    #[test]
    fn durations_heavy_tailed() {
        let t = ClusterTrace::generate(TraceConfig::small(4));
        let mut d: Vec<f64> = t
            .tasks()
            .iter()
            .map(|t| t.lifetime().as_secs_f64())
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = d[d.len() / 2];
        let p99 = d[d.len() * 99 / 100];
        assert!(p99 > 8.0 * median, "median {median}, p99 {p99}");
    }

    #[test]
    fn idle_population_exists() {
        let t = ClusterTrace::generate(TraceConfig::small(5));
        let idle = t.tasks().iter().filter(|t| t.is_idle()).count();
        let frac = idle as f64 / t.tasks().len() as f64;
        assert!((0.03..0.40).contains(&frac), "idle fraction {frac}");
    }

    #[test]
    fn used_never_exceeds_booked() {
        let t = ClusterTrace::generate(TraceConfig::small(6));
        for task in t.tasks() {
            assert!(task.cpu_used <= task.cpu_booked);
            assert!(task.mem_used <= task.mem_booked);
            assert!(task.end > task.start);
        }
    }

    #[test]
    fn event_order_is_shared_across_clones_and_modified() {
        let t = ClusterTrace::generate(TraceConfig::small(9));
        let first = t.event_order();
        assert!(
            Arc::ptr_eq(&first, &t.event_order()),
            "repeated calls share one cached build"
        );
        // Clones and the modified derivative keep the same start/end
        // times, so they share the parent's cache instead of re-sorting.
        let clone = t.clone();
        assert!(Arc::ptr_eq(&first, &clone.event_order()));
        let modified = t.modified();
        assert!(Arc::ptr_eq(&first, &modified.event_order()));
        // A clone taken before the cache was built rebuilds its own
        // order with identical content (same tasks → same permutations).
        let fresh = ClusterTrace::generate(TraceConfig::small(9));
        let early_clone = fresh.clone();
        let built = fresh.event_order();
        assert!(!Arc::ptr_eq(&built, &early_clone.event_order()));
        assert_eq!(built.by_start, early_clone.event_order().by_start);
        assert_eq!(built.by_end, early_clone.event_order().by_end);
    }

    #[test]
    fn event_stream_matches_the_materialized_sort() {
        let t = ClusterTrace::generate(TraceConfig::small(9));
        // The pre-streaming reference: materialize and sort every event.
        let mut ev: Vec<TraceEvent> = Vec::with_capacity(t.tasks().len() * 2);
        for (i, task) in t.tasks().iter().enumerate() {
            ev.push((task.start, EventKind::Arrive, i));
            ev.push((task.end, EventKind::Depart, i));
        }
        ev.sort_by_key(|&(at, kind, i)| (at, kind != EventKind::Depart, i));
        let streamed: Vec<TraceEvent> = t.event_stream().collect();
        assert_eq!(streamed, ev);
        assert_eq!(t.event_stream().len(), t.events_len());
    }

    #[test]
    fn events_sorted_and_balanced() {
        let t = ClusterTrace::generate(TraceConfig::small(9));
        let ev: Vec<TraceEvent> = t.event_stream().collect();
        assert_eq!(ev.len(), t.tasks().len() * 2);
        assert!(ev.windows(2).all(|w| w[0].0 <= w[1].0));
        // Every arrival has a departure.
        let arrives = ev.iter().filter(|e| e.1 == EventKind::Arrive).count();
        assert_eq!(arrives * 2, ev.len());
    }
}
