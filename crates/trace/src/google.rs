//! Synthetic Google-cluster-like traces (§6.6.2's input).
//!
//! The paper replays the public Google cluster traces: 29 days, 12 583
//! servers, thousands of jobs each made of tasks with *booked* resource
//! capacities and periodically sampled *actual* utilization. What the
//! energy comparison is sensitive to is not the exact trace bytes but its
//! statistical shape:
//!
//! - heavy-tailed task durations (most tasks are short, a few run for
//!   days);
//! - quantized, small booked-CPU requests with a large booked-vs-used gap;
//! - a sizable population of near-idle tasks (what Oasis partially
//!   migrates);
//! - a diurnal load swing;
//! - the booked memory : booked CPU ratio — 1:1-ish in the original trace,
//!   and exactly the knob the paper turns to build its "modified" set
//!   ("we built a second set in which the memory demand is twice the CPU
//!   demand as the actual trends reveal").
//!
//! [`ClusterTrace::generate`] produces such a trace deterministically from
//! a seed; [`ClusterTrace::modified`] applies the paper's transform.

use std::sync::OnceLock;

use zombieland_simcore::{DetRng, SimDuration, SimTime};

/// Configuration of a synthetic trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Number of servers the trace is sized for (capacity normalization:
    /// one server = 1.0 CPU = 1.0 memory).
    pub servers: u32,
    /// Trace length (the Google trace is 29 days).
    pub duration: SimDuration,
    /// RNG seed; same seed → identical trace.
    pub seed: u64,
    /// Booked memory : booked CPU ratio (1.0 ≈ original trace; 2.0 =
    /// the paper's modified set).
    pub mem_cpu_ratio: f64,
    /// Target average booked-CPU utilization of the cluster (the Google
    /// trace books ~60 % of CPU on average).
    pub avg_utilization: f64,
}

impl TraceConfig {
    /// The paper's full-scale setup (29 days, 12 583 servers).
    pub fn paper_scale(seed: u64) -> Self {
        TraceConfig {
            servers: 12_583,
            duration: SimDuration::from_days(29),
            seed,
            mem_cpu_ratio: 1.0,
            avg_utilization: 0.6,
        }
    }

    /// A laptop-scale setup preserving the statistics (for tests and quick
    /// runs).
    pub fn small(seed: u64) -> Self {
        TraceConfig {
            servers: 100,
            duration: SimDuration::from_days(3),
            seed,
            mem_cpu_ratio: 1.0,
            avg_utilization: 0.6,
        }
    }
}

/// One task (the paper treats each task as a VM/container).
#[derive(Clone, Copy, Debug)]
pub struct TaskSpec {
    /// Job the task belongs to.
    pub job: u32,
    /// Index within the job.
    pub index: u32,
    /// Start time.
    pub start: SimTime,
    /// Termination time.
    pub end: SimTime,
    /// Booked CPU (fraction of one server).
    pub cpu_booked: f64,
    /// Booked memory (fraction of one server).
    pub mem_booked: f64,
    /// Average actual CPU use (≤ booked).
    pub cpu_used: f64,
    /// Average actual memory use (≤ booked).
    pub mem_used: f64,
}

impl TaskSpec {
    /// Task lifetime.
    pub fn lifetime(&self) -> SimDuration {
        self.end - self.start
    }

    /// Whether the task is effectively idle (the Oasis criterion:
    /// CPU utilization below 1 % of a server).
    pub fn is_idle(&self) -> bool {
        self.cpu_used < 0.01
    }
}

/// A trace event for chronological replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Task `task_idx` starts.
    Arrive,
    /// Task `task_idx` terminates.
    Depart,
}

/// `(time, kind, index into tasks())`.
pub type TraceEvent = (SimTime, EventKind, usize);

/// A complete synthetic trace.
#[derive(Clone, Debug)]
pub struct ClusterTrace {
    config: TraceConfig,
    tasks: Vec<TaskSpec>,
    /// Chronologically sorted events, built lazily on the first
    /// [`Self::events`] call and shared by every simulation over this
    /// trace afterwards. `OnceLock` keeps `&ClusterTrace` shareable
    /// across runner workers while the cache fills exactly once.
    events_cache: OnceLock<Vec<TraceEvent>>,
}

/// Google-style quantized CPU request sizes (fractions of a server) and
/// their sampling weights (small requests dominate).
const CPU_QUANTA: [(f64, u32); 5] = [(0.031, 35), (0.062, 30), (0.125, 20), (0.25, 10), (0.5, 5)];

impl ClusterTrace {
    /// Generates a trace for `config`.
    ///
    /// Tasks are emitted until their aggregate booked CPU-time integral
    /// reaches `avg_utilization × servers × duration`, which pins the mean
    /// cluster load; arrival times follow a diurnal pattern and durations
    /// a Pareto tail.
    pub fn generate(config: TraceConfig) -> Self {
        let mut rng = DetRng::new(config.seed);
        let horizon = config.duration.as_secs_f64();
        let target_integral = config.avg_utilization * config.servers as f64 * horizon;

        let mut tasks = Vec::new();
        let mut integral = 0.0;
        let mut job = 0u32;
        while integral < target_integral {
            // One job: a geometric number of similar tasks.
            let fanout = 1 + rng.exponential(0.45) as u32;
            let cpu_quantum = Self::sample_cpu(&mut rng);
            let start_s = Self::sample_diurnal_start(&mut rng, horizon);
            for index in 0..fanout {
                // Pareto durations: median ~17 min, long tail to days.
                let dur_s = rng.pareto(600.0, 1.1).min(horizon * 1.5);
                let start = SimTime::ZERO + SimDuration::from_secs_f64(start_s);
                let end_s = (start_s + dur_s).min(horizon);
                let end = SimTime::ZERO + SimDuration::from_secs_f64(end_s);
                if end_s - start_s < 1.0 {
                    continue;
                }
                let cpu_booked = cpu_quantum;
                let mem_noise = (rng.range_f64(-0.5, 0.5)).exp();
                let mem_booked = (cpu_booked * config.mem_cpu_ratio * mem_noise).clamp(0.004, 1.0);
                // ~20 % of tasks are near-idle; the rest use 20–90 % of
                // their booking.
                let cpu_use_frac = if rng.chance(0.2) {
                    rng.range_f64(0.0, 0.15)
                } else {
                    rng.range_f64(0.2, 0.9)
                };
                let mem_use_frac = rng.range_f64(0.4, 0.95);
                tasks.push(TaskSpec {
                    job,
                    index,
                    start,
                    end,
                    cpu_booked,
                    mem_booked,
                    cpu_used: cpu_booked * cpu_use_frac,
                    mem_used: mem_booked * mem_use_frac,
                });
                integral += cpu_booked * (end_s - start_s);
            }
            job += 1;
        }
        ClusterTrace {
            config,
            tasks,
            events_cache: OnceLock::new(),
        }
    }

    fn sample_cpu(rng: &mut DetRng) -> f64 {
        let total: u32 = CPU_QUANTA.iter().map(|(_, w)| w).sum();
        let mut pick = rng.below(total as u64) as u32;
        for (q, w) in CPU_QUANTA {
            if pick < w {
                return q;
            }
            pick -= w;
        }
        CPU_QUANTA[0].0
    }

    /// Start times follow a day/night swing: acceptance-rejection against
    /// `1 + 0.35·sin(2πt/day)`.
    fn sample_diurnal_start(rng: &mut DetRng, horizon: f64) -> f64 {
        const DAY: f64 = 86_400.0;
        loop {
            let t = rng.f64() * horizon;
            let weight = 1.0 + 0.35 * (2.0 * std::f64::consts::PI * t / DAY).sin();
            if rng.f64() * 1.35 < weight {
                return t;
            }
        }
    }

    /// The paper's modified set: booked/used memory rescaled so memory
    /// demand is twice CPU demand.
    pub fn modified(&self) -> ClusterTrace {
        let mut config = self.config;
        config.mem_cpu_ratio = 2.0;
        let scale = 2.0 / self.config.mem_cpu_ratio;
        let tasks = self
            .tasks
            .iter()
            .map(|t| TaskSpec {
                mem_booked: (t.mem_booked * scale).min(1.0),
                mem_used: (t.mem_used * scale).min(1.0),
                ..*t
            })
            .collect();
        ClusterTrace {
            config,
            tasks,
            events_cache: OnceLock::new(),
        }
    }

    /// Builds a trace from explicit parts (trace import, tests).
    pub fn from_parts(config: TraceConfig, tasks: Vec<TaskSpec>) -> ClusterTrace {
        ClusterTrace {
            config,
            tasks,
            events_cache: OnceLock::new(),
        }
    }

    /// The generation configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// All tasks, in generation order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Arrival/departure events sorted chronologically (departures before
    /// arrivals at equal instants, so capacity frees first).
    ///
    /// Built once per trace and cached: a multi-day trace has tens of
    /// thousands of events, and grid experiments simulate the same trace
    /// for every policy×profile cell — the allocation and sort must not
    /// be repaid per cell (or per worker thread).
    pub fn events(&self) -> &[TraceEvent] {
        self.events_cache.get_or_init(|| {
            let mut ev: Vec<TraceEvent> = Vec::with_capacity(self.tasks.len() * 2);
            for (i, t) in self.tasks.iter().enumerate() {
                ev.push((t.start, EventKind::Arrive, i));
                ev.push((t.end, EventKind::Depart, i));
            }
            ev.sort_by_key(|&(t, kind, i)| (t, kind != EventKind::Depart, i));
            ev
        })
    }

    /// Average concurrent booked CPU, in servers.
    pub fn avg_booked_cpu(&self) -> f64 {
        let horizon = self.config.duration.as_secs_f64();
        self.tasks
            .iter()
            .map(|t| t.cpu_booked * t.lifetime().as_secs_f64())
            .sum::<f64>()
            / horizon
    }

    /// Average concurrent booked memory, in servers.
    pub fn avg_booked_mem(&self) -> f64 {
        let horizon = self.config.duration.as_secs_f64();
        self.tasks
            .iter()
            .map(|t| t.mem_booked * t.lifetime().as_secs_f64())
            .sum::<f64>()
            / horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = ClusterTrace::generate(TraceConfig::small(7));
        let b = ClusterTrace::generate(TraceConfig::small(7));
        assert_eq!(a.tasks().len(), b.tasks().len());
        assert_eq!(a.tasks()[0].cpu_booked, b.tasks()[0].cpu_booked);
        let c = ClusterTrace::generate(TraceConfig::small(8));
        assert_ne!(a.tasks().len(), c.tasks().len());
    }

    #[test]
    fn hits_target_utilization() {
        let t = ClusterTrace::generate(TraceConfig::small(1));
        let avg = t.avg_booked_cpu() / t.config().servers as f64;
        assert!((avg - 0.6).abs() < 0.1, "avg booked cpu {avg}");
    }

    #[test]
    fn mem_cpu_ratio_respected() {
        let t = ClusterTrace::generate(TraceConfig::small(2));
        let ratio = t.avg_booked_mem() / t.avg_booked_cpu();
        // Log-normal noise is mean-biased above 1; accept a broad band
        // around 1.
        assert!((0.7..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn modified_doubles_memory_demand() {
        let t = ClusterTrace::generate(TraceConfig::small(3));
        let m = t.modified();
        let r0 = t.avg_booked_mem() / t.avg_booked_cpu();
        let r1 = m.avg_booked_mem() / m.avg_booked_cpu();
        assert!(r1 / r0 > 1.8, "{r0} -> {r1}");
        assert_eq!(m.tasks().len(), t.tasks().len());
        // CPU side untouched.
        assert_eq!(m.avg_booked_cpu(), t.avg_booked_cpu());
        // Bookings stay within a machine.
        assert!(m.tasks().iter().all(|t| t.mem_booked <= 1.0));
    }

    #[test]
    fn durations_heavy_tailed() {
        let t = ClusterTrace::generate(TraceConfig::small(4));
        let mut d: Vec<f64> = t
            .tasks()
            .iter()
            .map(|t| t.lifetime().as_secs_f64())
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = d[d.len() / 2];
        let p99 = d[d.len() * 99 / 100];
        assert!(p99 > 8.0 * median, "median {median}, p99 {p99}");
    }

    #[test]
    fn idle_population_exists() {
        let t = ClusterTrace::generate(TraceConfig::small(5));
        let idle = t.tasks().iter().filter(|t| t.is_idle()).count();
        let frac = idle as f64 / t.tasks().len() as f64;
        assert!((0.03..0.40).contains(&frac), "idle fraction {frac}");
    }

    #[test]
    fn used_never_exceeds_booked() {
        let t = ClusterTrace::generate(TraceConfig::small(6));
        for task in t.tasks() {
            assert!(task.cpu_used <= task.cpu_booked);
            assert!(task.mem_used <= task.mem_booked);
            assert!(task.end > task.start);
        }
    }

    #[test]
    fn events_are_cached_per_trace() {
        let t = ClusterTrace::generate(TraceConfig::small(9));
        let first = t.events();
        let second = t.events();
        assert!(
            std::ptr::eq(first.as_ptr(), second.as_ptr()),
            "repeated calls share one cached build"
        );
        // Derived traces get caches of their own with identical content
        // rules (same tasks → same events).
        let clone = t.clone();
        assert_eq!(clone.events(), first);
        assert!(!std::ptr::eq(clone.events().as_ptr(), first.as_ptr()));
    }

    #[test]
    fn events_sorted_and_balanced() {
        let t = ClusterTrace::generate(TraceConfig::small(9));
        let ev = t.events();
        assert_eq!(ev.len(), t.tasks().len() * 2);
        assert!(ev.windows(2).all(|w| w[0].0 <= w[1].0));
        // Every arrival has a departure.
        let arrives = ev.iter().filter(|e| e.1 == EventKind::Arrive).count();
        assert_eq!(arrives * 2, ev.len());
    }
}
