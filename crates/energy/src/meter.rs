//! Energy integration over simulated time (the PowerSpy2 stand-in).

use zombieland_simcore::{Joules, SimTime, Watts};

/// Integrates a piecewise-constant power signal into Joules.
///
/// The datacenter simulator calls [`EnergyMeter::set_power`] whenever a
/// server's state or utilization changes; the meter accumulates energy for
/// the elapsed interval at the previous level.
///
/// # Examples
///
/// ```
/// use zombieland_energy::EnergyMeter;
/// use zombieland_simcore::{SimDuration, SimTime, Watts};
///
/// let mut m = EnergyMeter::new(SimTime::ZERO, Watts::new(100.0));
/// m.set_power(SimTime::ZERO + SimDuration::from_secs(10), Watts::new(50.0));
/// let total = m.finish(SimTime::ZERO + SimDuration::from_secs(20));
/// assert!((total.get() - (100.0 * 10.0 + 50.0 * 10.0)).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct EnergyMeter {
    since: SimTime,
    power: Watts,
    total: Joules,
}

impl EnergyMeter {
    /// Starts metering at `start` with an initial power level.
    pub fn new(start: SimTime, power: Watts) -> Self {
        EnergyMeter {
            since: start,
            power,
            total: Joules::ZERO,
        }
    }

    /// Records a power change at `at`, accumulating the interval since the
    /// last change. Out-of-order timestamps are clamped (treated as "now").
    pub fn set_power(&mut self, at: SimTime, power: Watts) {
        let elapsed = at.saturating_since(self.since);
        self.total += self.power.over(elapsed);
        self.since = self.since.max(at);
        self.power = power;
        // Observability carries watts as integer milliwatts so the JSONL
        // stays float-free (and therefore byte-stable).
        let mw = (power.get() * 1000.0).round() as u64;
        zombieland_obs::sink::gauge_set("energy.power_mw", mw);
        zombieland_obs::trace_event!(at, "energy", "power", "milliwatts" => mw);
    }

    /// Current power level.
    pub fn power(&self) -> Watts {
        self.power
    }

    /// Energy accumulated so far, up to the last recorded change.
    pub fn accumulated(&self) -> Joules {
        self.total
    }

    /// Closes the measurement at `at` and returns the grand total.
    pub fn finish(mut self, at: SimTime) -> Joules {
        self.set_power(at, Watts::ZERO);
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zombieland_simcore::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn integrates_piecewise_signal() {
        let mut m = EnergyMeter::new(t(0), Watts::new(10.0));
        m.set_power(t(5), Watts::new(20.0));
        m.set_power(t(8), Watts::new(0.0));
        let total = m.finish(t(100));
        // 10 W * 5 s + 20 W * 3 s + 0 W * 92 s.
        assert!((total.get() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_changes_are_free() {
        let mut m = EnergyMeter::new(t(0), Watts::new(10.0));
        m.set_power(t(0), Watts::new(99.0));
        m.set_power(t(0), Watts::new(1.0));
        let total = m.finish(t(1));
        assert!((total.get() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_clamped() {
        let mut m = EnergyMeter::new(t(10), Watts::new(10.0));
        // A timestamp before the meter started: no negative energy.
        m.set_power(t(5), Watts::new(50.0));
        let total = m.finish(t(11));
        assert!((total.get() - 50.0).abs() < 1e-9);
    }
}
