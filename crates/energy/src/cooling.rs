//! Datacenter cooling overhead (the paper's footnote 1).
//!
//! "The low energy consumption of a Zombie server translates into less
//! dissipated heat. Thereby, the Zombie technology also decreases the
//! energy consumed by the datacenter cooling system." Cooling power
//! tracks dissipated IT power, so every Watt saved at the server is
//! amplified at the facility meter. The standard way to express this is
//! PUE (power usage effectiveness): facility power = PUE × IT power.

use zombieland_simcore::Joules;

/// A facility cooling/overhead model.
#[derive(Clone, Copy, Debug)]
pub struct CoolingModel {
    /// Power usage effectiveness: total facility power / IT power.
    /// Industry averages hover around 1.5; hyperscalers reach ~1.1.
    pub pue: f64,
}

impl CoolingModel {
    /// A typical enterprise datacenter.
    pub fn typical() -> Self {
        CoolingModel { pue: 1.5 }
    }

    /// A modern, highly optimized facility.
    pub fn hyperscale() -> Self {
        CoolingModel { pue: 1.12 }
    }

    /// Builds from an explicit PUE.
    ///
    /// # Panics
    ///
    /// Panics if `pue < 1.0` (facility power cannot be below IT power).
    pub fn with_pue(pue: f64) -> Self {
        assert!(pue >= 1.0, "PUE is total/IT and cannot be below 1");
        CoolingModel { pue }
    }

    /// Facility energy for a given IT energy.
    pub fn facility_energy(&self, it: Joules) -> Joules {
        Joules::new(it.get() * self.pue)
    }

    /// The cooling/overhead share alone.
    pub fn overhead_energy(&self, it: Joules) -> Joules {
        Joules::new(it.get() * (self.pue - 1.0))
    }

    /// Facility-level savings implied by an IT-level saving: with a
    /// load-proportional cooling model the *percentage* carries over
    /// unchanged, but the absolute Joules are amplified by PUE — the
    /// footnote's point.
    pub fn amplified_saving(&self, baseline_it: Joules, improved_it: Joules) -> Joules {
        Joules::new((baseline_it.get() - improved_it.get()).max(0.0) * self.pue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facility_scales_by_pue() {
        let m = CoolingModel::typical();
        let it = Joules::new(1000.0);
        assert!((m.facility_energy(it).get() - 1500.0).abs() < 1e-9);
        assert!((m.overhead_energy(it).get() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn savings_amplify_in_joules_not_percent() {
        let m = CoolingModel::typical();
        let base = Joules::new(1000.0);
        let improved = Joules::new(600.0);
        // 400 J saved at the servers -> 600 J at the meter.
        assert!((m.amplified_saving(base, improved).get() - 600.0).abs() < 1e-9);
        // Percentage is invariant under proportional cooling.
        let pct_it = 1.0 - improved.get() / base.get();
        let pct_fac = 1.0 - m.facility_energy(improved).get() / m.facility_energy(base).get();
        assert!((pct_it - pct_fac).abs() < 1e-12);
    }

    #[test]
    fn hyperscale_overhead_is_small() {
        let m = CoolingModel::hyperscale();
        assert!(m.overhead_energy(Joules::new(100.0)).get() < 15.0);
    }

    #[test]
    #[should_panic(expected = "cannot be below 1")]
    fn pue_below_one_rejected() {
        CoolingModel::with_pue(0.9);
    }
}
