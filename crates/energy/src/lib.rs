//! Energy models: machine profiles, the paper's Sz estimation (Eq. 1),
//! utilization power curves and rack-level architecture comparisons.
//!
//! The paper could not measure an Sz machine (none exists), so §6.6.1
//! *derives* Sz consumption from seven measured configurations of two lab
//! machines (Table 3) using Eq. 1. This crate encodes those measurements
//! as data ([`profile`]), implements the derivation, and builds the two
//! figure-level models on top:
//!
//! - [`curve`] — Fig. 1's energy-vs-utilization curves (actual vs ideal).
//! - [`rack`] — Fig. 4's rack-level energy totals for the four
//!   architectures (server-centric, ideal disaggregation, micro-servers,
//!   zombie).
//! - [`meter`] — a PowerSpy2-like integrator used by the datacenter
//!   simulator to turn state/utilization timelines into Joules.
//! - [`model`] — the [`PowerModel`] trait mapping a host's situation
//!   (active/zombie/suspended) to Watts; [`Table3Power`] is the paper's
//!   calibrated implementation and other models can plug in beside it.
//! - [`cooling`] — the facility-level (PUE) amplification of server-level
//!   savings that the paper's footnote 1 points out.

pub mod cooling;
pub mod curve;
pub mod meter;
pub mod model;
pub mod profile;
pub mod rack;

pub use meter::EnergyMeter;
pub use model::{
    generation_power, GenerationPower, HostDraw, PowerModel, Table3Power, GENERATION_POWER, TABLE3,
};
pub use profile::{MachineProfile, MeasuredConfig};
