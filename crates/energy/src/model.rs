//! Pluggable host power models.
//!
//! The datacenter simulator integrates fleet energy from per-host power
//! draws. What a host draws depends on what it is doing — running VMs at
//! some utilization, lending memory from Sz, or suspended in S3 — and on
//! the *model* that maps those situations to Watts. [`PowerModel`] is
//! that mapping as a trait, so the Table-3-calibrated model the paper
//! uses ([`Table3Power`]) is one implementation rather than arithmetic
//! hardwired into the simulator.

use core::fmt::Debug;

use zombieland_acpi::SleepState;
use zombieland_simcore::Watts;

use crate::curve::power_fraction;
use crate::profile::MachineProfile;

/// What a host is doing, as far as its power draw is concerned.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum HostDraw {
    /// Running (S0) with VMs at the given CPU utilization in `[0, 1]`.
    Active {
        /// Actual CPU utilization (values outside `[0, 1]` are clamped).
        utilization: f64,
    },
    /// In the zombie state (Sz): suspended but serving memory.
    Zombie,
    /// Suspended to RAM (S3), Wake-on-LAN card powered.
    Suspended,
}

/// A model mapping a machine's situation to instantaneous power.
///
/// Implementations must be pure functions of their inputs: the simulator
/// calls [`PowerModel::host_power`] on every host mutation and relies on
/// the same `(profile, draw)` always producing the same Watts bits for
/// its bit-for-bit determinism contract.
pub trait PowerModel: Send + Sync + Debug {
    /// Model name, for listings and debugging.
    fn name(&self) -> &'static str;

    /// Instantaneous draw of one host of `profile` in situation `draw`.
    fn host_power(&self, profile: &MachineProfile, draw: HostDraw) -> Watts;

    /// Draw while a suspend/wake transition is in flight. The platform
    /// runs its enter/exit sequences at near-full power; models that
    /// disagree can override.
    fn transition_power(&self, profile: &MachineProfile) -> Watts {
        profile.max_power() * 0.9
    }
}

/// The paper's power model, calibrated from the Table 3 measurements:
///
/// - **Active** hosts follow the Fig. 1 utilization curve
///   ([`power_fraction`]) scaled to the machine's max draw.
/// - **Zombie** hosts draw the Eq. 1 estimate
///   ([`MachineProfile::sz_fraction`]).
/// - **Suspended** hosts draw the measured S3-with-Infiniband fraction.
#[derive(Clone, Copy, Debug)]
pub struct Table3Power;

/// The shared instance simulator configs point at by default.
pub static TABLE3: Table3Power = Table3Power;

impl PowerModel for Table3Power {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn host_power(&self, profile: &MachineProfile, draw: HostDraw) -> Watts {
        match draw {
            HostDraw::Active { utilization } => {
                profile.max_power() * power_fraction(profile, utilization.clamp(0.0, 1.0))
            }
            HostDraw::Zombie => profile.max_power() * profile.sz_fraction(),
            HostDraw::Suspended => profile.max_power() * profile.state_fraction(SleepState::S3),
        }
    }
}

/// A generation-scaled power model for heterogeneous fleets.
///
/// The Table 3 measurements come from one machine generation; a real
/// fleet mixes model years whose sockets differ in core count and DIMM
/// population (the `trace` crate's generations table, after Lim et al.).
/// This model keeps the paper's draw *curve* — the Fig. 1 utilization
/// shape, the Eq. 1 zombie estimate, the measured S3 fraction — and
/// scales its magnitude by the generation's component counts: roughly
/// half a platform floor (PSU, fans, board), 30 % tracking the socket's
/// core count and 20 % tracking its DIMM population, normalized so the
/// 2013 generation (16 cores, 8 DIMMs) reproduces `Table3Power` × 1.0.
///
/// Like every [`PowerModel`], the scaling is a pure function of static
/// table data, so heterogeneous runs stay bit-for-bit deterministic.
#[derive(Clone, Copy, Debug)]
pub struct GenerationPower {
    /// The generation whose component counts set the scale.
    generation: &'static zombieland_trace::generations::Generation,
    /// Model name (`"genYYYY"`), for listings and debugging.
    name: &'static str,
}

/// Core count of the reference (2013) generation.
const REF_CORES: f64 = 16.0;
/// DIMM count (channels × DIMMs-per-channel) of the reference generation.
const REF_DIMMS: f64 = 8.0;

impl GenerationPower {
    /// Max-power scale of this generation relative to the 2013 reference.
    pub fn scale(&self) -> f64 {
        let g = self.generation;
        let cores = g.cores_per_socket as f64 / REF_CORES;
        let dimms = (g.channels * g.dimms_per_channel) as f64 / REF_DIMMS;
        0.5 + 0.3 * cores + 0.2 * dimms
    }

    /// The generation whose component counts set the scale.
    pub fn generation(&self) -> &'static zombieland_trace::generations::Generation {
        self.generation
    }
}

impl PowerModel for GenerationPower {
    fn name(&self) -> &'static str {
        self.name
    }

    fn host_power(&self, profile: &MachineProfile, draw: HostDraw) -> Watts {
        TABLE3.host_power(profile, draw) * self.scale()
    }

    fn transition_power(&self, profile: &MachineProfile) -> Watts {
        TABLE3.transition_power(profile) * self.scale()
    }
}

macro_rules! generation_models {
    ($($idx:literal => $name:literal),+ $(,)?) => {
        /// One [`GenerationPower`] per row of the generations table, in
        /// table (year) order.
        pub static GENERATION_POWER: [GenerationPower; 9] = [
            $(GenerationPower {
                generation: &zombieland_trace::generations::GENERATIONS[$idx],
                name: $name,
            }),+
        ];
    };
}

generation_models! {
    0 => "gen2005",
    1 => "gen2006",
    2 => "gen2007",
    3 => "gen2008",
    4 => "gen2009",
    5 => "gen2010",
    6 => "gen2011",
    7 => "gen2012",
    8 => "gen2013",
}

/// The [`GenerationPower`] model for a model year, if the generations
/// table covers it.
pub fn generation_power(year: u16) -> Option<&'static GenerationPower> {
    GENERATION_POWER.iter().find(|m| m.generation.year == year)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_profile_math() {
        for p in [MachineProfile::hp(), MachineProfile::dell()] {
            let m = &TABLE3 as &dyn PowerModel;
            for u in [0.0, 0.3, 0.97, 1.0, 1.7] {
                assert_eq!(
                    m.host_power(&p, HostDraw::Active { utilization: u }).get(),
                    (p.max_power() * power_fraction(&p, u.clamp(0.0, 1.0))).get(),
                    "{} active at {u}",
                    p.name()
                );
            }
            assert_eq!(
                m.host_power(&p, HostDraw::Zombie).get(),
                (p.max_power() * p.sz_fraction()).get()
            );
            assert_eq!(
                m.host_power(&p, HostDraw::Suspended).get(),
                (p.max_power() * p.state_fraction(SleepState::S3)).get()
            );
            assert_eq!(m.transition_power(&p).get(), (p.max_power() * 0.9).get());
        }
    }

    #[test]
    fn draw_ordering_is_physical() {
        let p = MachineProfile::hp();
        let m = &TABLE3;
        let active = m
            .host_power(&p, HostDraw::Active { utilization: 0.0 })
            .get();
        let zombie = m.host_power(&p, HostDraw::Zombie).get();
        let asleep = m.host_power(&p, HostDraw::Suspended).get();
        assert!(active > zombie && zombie > asleep && asleep > 0.0);
    }

    #[test]
    fn generation_models_cover_the_table_and_index_by_year() {
        assert_eq!(
            GENERATION_POWER.len(),
            zombieland_trace::generations::GENERATIONS.len()
        );
        for (m, g) in GENERATION_POWER
            .iter()
            .zip(&zombieland_trace::generations::GENERATIONS)
        {
            assert_eq!(m.generation.year, g.year, "{}", m.name());
            assert_eq!(m.name(), format!("gen{}", g.year));
        }
        assert_eq!(generation_power(2013).unwrap().name(), "gen2013");
        assert!(generation_power(2004).is_none());
    }

    #[test]
    fn reference_generation_reproduces_table3_exactly() {
        let gen2013 = generation_power(2013).unwrap();
        assert_eq!(gen2013.scale(), 1.0);
        let p = MachineProfile::hp();
        for draw in [
            HostDraw::Active { utilization: 0.4 },
            HostDraw::Zombie,
            HostDraw::Suspended,
        ] {
            assert_eq!(
                gen2013.host_power(&p, draw).get(),
                (TABLE3.host_power(&p, draw) * 1.0).get()
            );
        }
    }

    #[test]
    fn older_generations_draw_less() {
        let p = MachineProfile::hp();
        let mut last = f64::INFINITY;
        for m in GENERATION_POWER.iter() {
            let s = m.scale();
            assert!((0.5..=1.0 + 1e-12).contains(&s), "{} scale {s}", m.name());
            let _ = last;
            last = s;
        }
        // The fleet's oldest sockets (2 cores) draw well under the 2013
        // reference at every draw state.
        let old = generation_power(2005).unwrap();
        for draw in [
            HostDraw::Active { utilization: 1.0 },
            HostDraw::Zombie,
            HostDraw::Suspended,
        ] {
            assert!(old.host_power(&p, draw) < TABLE3.host_power(&p, draw));
        }
        assert!(old.transition_power(&p) < TABLE3.transition_power(&p));
    }
}
