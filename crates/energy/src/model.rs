//! Pluggable host power models.
//!
//! The datacenter simulator integrates fleet energy from per-host power
//! draws. What a host draws depends on what it is doing — running VMs at
//! some utilization, lending memory from Sz, or suspended in S3 — and on
//! the *model* that maps those situations to Watts. [`PowerModel`] is
//! that mapping as a trait, so the Table-3-calibrated model the paper
//! uses ([`Table3Power`]) is one implementation rather than arithmetic
//! hardwired into the simulator.

use core::fmt::Debug;

use zombieland_acpi::SleepState;
use zombieland_simcore::Watts;

use crate::curve::power_fraction;
use crate::profile::MachineProfile;

/// What a host is doing, as far as its power draw is concerned.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum HostDraw {
    /// Running (S0) with VMs at the given CPU utilization in `[0, 1]`.
    Active {
        /// Actual CPU utilization (values outside `[0, 1]` are clamped).
        utilization: f64,
    },
    /// In the zombie state (Sz): suspended but serving memory.
    Zombie,
    /// Suspended to RAM (S3), Wake-on-LAN card powered.
    Suspended,
}

/// A model mapping a machine's situation to instantaneous power.
///
/// Implementations must be pure functions of their inputs: the simulator
/// calls [`PowerModel::host_power`] on every host mutation and relies on
/// the same `(profile, draw)` always producing the same Watts bits for
/// its bit-for-bit determinism contract.
pub trait PowerModel: Send + Sync + Debug {
    /// Model name, for listings and debugging.
    fn name(&self) -> &'static str;

    /// Instantaneous draw of one host of `profile` in situation `draw`.
    fn host_power(&self, profile: &MachineProfile, draw: HostDraw) -> Watts;

    /// Draw while a suspend/wake transition is in flight. The platform
    /// runs its enter/exit sequences at near-full power; models that
    /// disagree can override.
    fn transition_power(&self, profile: &MachineProfile) -> Watts {
        profile.max_power() * 0.9
    }
}

/// The paper's power model, calibrated from the Table 3 measurements:
///
/// - **Active** hosts follow the Fig. 1 utilization curve
///   ([`power_fraction`]) scaled to the machine's max draw.
/// - **Zombie** hosts draw the Eq. 1 estimate
///   ([`MachineProfile::sz_fraction`]).
/// - **Suspended** hosts draw the measured S3-with-Infiniband fraction.
#[derive(Clone, Copy, Debug)]
pub struct Table3Power;

/// The shared instance simulator configs point at by default.
pub static TABLE3: Table3Power = Table3Power;

impl PowerModel for Table3Power {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn host_power(&self, profile: &MachineProfile, draw: HostDraw) -> Watts {
        match draw {
            HostDraw::Active { utilization } => {
                profile.max_power() * power_fraction(profile, utilization.clamp(0.0, 1.0))
            }
            HostDraw::Zombie => profile.max_power() * profile.sz_fraction(),
            HostDraw::Suspended => profile.max_power() * profile.state_fraction(SleepState::S3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_profile_math() {
        for p in [MachineProfile::hp(), MachineProfile::dell()] {
            let m = &TABLE3 as &dyn PowerModel;
            for u in [0.0, 0.3, 0.97, 1.0, 1.7] {
                assert_eq!(
                    m.host_power(&p, HostDraw::Active { utilization: u }).get(),
                    (p.max_power() * power_fraction(&p, u.clamp(0.0, 1.0))).get(),
                    "{} active at {u}",
                    p.name()
                );
            }
            assert_eq!(
                m.host_power(&p, HostDraw::Zombie).get(),
                (p.max_power() * p.sz_fraction()).get()
            );
            assert_eq!(
                m.host_power(&p, HostDraw::Suspended).get(),
                (p.max_power() * p.state_fraction(SleepState::S3)).get()
            );
            assert_eq!(m.transition_power(&p).get(), (p.max_power() * 0.9).get());
        }
    }

    #[test]
    fn draw_ordering_is_physical() {
        let p = MachineProfile::hp();
        let m = &TABLE3;
        let active = m
            .host_power(&p, HostDraw::Active { utilization: 0.0 })
            .get();
        let zombie = m.host_power(&p, HostDraw::Zombie).get();
        let asleep = m.host_power(&p, HostDraw::Suspended).get();
        assert!(active > zombie && zombie > asleep && asleep > 0.0);
    }
}
