//! Machine energy profiles and the Sz estimation (Table 3 + Eq. 1).

use core::fmt;

use zombieland_acpi::SleepState;
use zombieland_simcore::Watts;

/// The seven configurations the paper measured with the PowerSpy2
/// analyzer (Table 3). Names follow the paper's notation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MeasuredConfig {
    /// S0, Infiniband card physically absent.
    S0WoIb,
    /// S0, Infiniband card present but unused.
    S0WIbOff,
    /// S0, Infiniband card in use.
    S0WIbOn,
    /// S3, Infiniband card absent.
    S3WoIb,
    /// S3, Infiniband card present (Wake-on-LAN capable).
    S3WIb,
    /// S4, Infiniband card absent.
    S4WoIb,
    /// S4, Infiniband card present.
    S4WIb,
}

impl MeasuredConfig {
    /// All configurations, in Table 3 column order.
    pub const ALL: [MeasuredConfig; 7] = [
        MeasuredConfig::S0WoIb,
        MeasuredConfig::S0WIbOff,
        MeasuredConfig::S0WIbOn,
        MeasuredConfig::S3WoIb,
        MeasuredConfig::S3WIb,
        MeasuredConfig::S4WoIb,
        MeasuredConfig::S4WIb,
    ];

    /// The paper's column label.
    pub fn label(self) -> &'static str {
        match self {
            MeasuredConfig::S0WoIb => "S0WOIB",
            MeasuredConfig::S0WIbOff => "S0WIBOff",
            MeasuredConfig::S0WIbOn => "S0WIBOn",
            MeasuredConfig::S3WoIb => "S3WOIB",
            MeasuredConfig::S3WIb => "S3WIB",
            MeasuredConfig::S4WoIb => "S4WOIB",
            MeasuredConfig::S4WIb => "S4WIB",
        }
    }
}

/// An energy profile of one machine model: measured idle/sleep fractions
/// (of the machine's maximum draw) plus its maximum power.
///
/// The two built-in profiles carry the paper's Table 3 measurements for
/// the HP Compaq Elite 8300 and the Dell Precision Tower 5810.
#[derive(Clone, Debug)]
pub struct MachineProfile {
    name: &'static str,
    /// Maximum (100 % utilization) power draw. The paper reports only
    /// fractions; these absolute values are typical for the two machines
    /// and only scale the Joule axis, never a relative result.
    max_power: Watts,
    fractions: [f64; 7],
}

impl MachineProfile {
    /// Table 3, HP row.
    pub fn hp() -> Self {
        MachineProfile {
            name: "HP",
            max_power: Watts::new(150.0),
            fractions: [0.4616, 0.5220, 0.5384, 0.0423, 0.1103, 0.0019, 0.0681],
        }
    }

    /// Table 3, Dell row.
    pub fn dell() -> Self {
        MachineProfile {
            name: "Dell",
            max_power: Watts::new(220.0),
            fractions: [0.3535, 0.4233, 0.4477, 0.0197, 0.0871, 0.0112, 0.0831],
        }
    }

    /// Builds a custom profile. `fractions` follows
    /// [`MeasuredConfig::ALL`] order.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]`.
    pub fn custom(name: &'static str, max_power: Watts, fractions: [f64; 7]) -> Self {
        assert!(
            fractions.iter().all(|f| (0.0..=1.0).contains(f)),
            "fractions are shares of max power"
        );
        MachineProfile {
            name,
            max_power,
            fractions,
        }
    }

    /// Machine model name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Maximum power draw.
    pub fn max_power(&self) -> Watts {
        self.max_power
    }

    /// The measured fraction of max power for a configuration.
    pub fn fraction(&self, config: MeasuredConfig) -> f64 {
        self.fractions[MeasuredConfig::ALL
            .iter()
            .position(|&c| c == config)
            .expect("ALL covers every config")]
    }

    /// **Eq. 1 of the paper**: estimates the Sz fraction from the measured
    /// configurations.
    ///
    /// ```text
    /// E(Sz) = (E(S0WIBOn) − E(S0WIBOff))   // Infiniband activity
    ///       + (E(S3WIB)  − E(S3WOIB))      // WoL path (low-power IB, PCIe, root complex)
    ///       + E(S3WOIB)                    // the rest of the S3 platform
    /// ```
    pub fn sz_fraction(&self) -> f64 {
        let ib_activity =
            self.fraction(MeasuredConfig::S0WIbOn) - self.fraction(MeasuredConfig::S0WIbOff);
        let wol_path = self.fraction(MeasuredConfig::S3WIb) - self.fraction(MeasuredConfig::S3WoIb);
        ib_activity + wol_path + self.fraction(MeasuredConfig::S3WoIb)
    }

    /// Idle fraction of a running (S0) server with its Infiniband card in
    /// use — the relevant baseline for a cloud host.
    pub fn s0_idle_fraction(&self) -> f64 {
        self.fraction(MeasuredConfig::S0WIbOn)
    }

    /// The fraction of max power drawn in `state`. For S0 this is the
    /// *idle* fraction; combine with [`crate::curve::power_fraction`] for
    /// utilization-dependent draw. Sleep states include the WoL-capable
    /// Infiniband card, as the paper assumes ("a server in a sleep state
    /// usually keeps at least one of its network card in a power state
    /// which allows the Wake-on-LAN").
    pub fn state_fraction(&self, state: SleepState) -> f64 {
        match state {
            SleepState::S0 => self.s0_idle_fraction(),
            SleepState::S3 => self.fraction(MeasuredConfig::S3WIb),
            SleepState::S4 => self.fraction(MeasuredConfig::S4WIb),
            // S5 is not in Table 3; soft-off with WoL sits at (or just
            // below) the S4-with-IB level.
            SleepState::S5 => self.fraction(MeasuredConfig::S4WIb),
            SleepState::Sz => self.sz_fraction(),
        }
    }

    /// Absolute power in `state` (S0 taken at idle).
    pub fn state_power(&self, state: SleepState) -> Watts {
        self.max_power * self.state_fraction(state)
    }
}

impl fmt::Display for MachineProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (max {:?})", self.name, self.max_power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hp_sz_matches_paper_value() {
        // Table 3 last column: HP 12.67 %.
        let hp = MachineProfile::hp();
        assert!(
            (hp.sz_fraction() - 0.1267).abs() < 1e-9,
            "{}",
            hp.sz_fraction()
        );
    }

    #[test]
    fn dell_sz_matches_paper_value() {
        // Table 3 last column: Dell 11.15 %.
        let dell = MachineProfile::dell();
        assert!(
            (dell.sz_fraction() - 0.1115).abs() < 1e-9,
            "{}",
            dell.sz_fraction()
        );
    }

    #[test]
    fn sz_sits_between_s3_and_s0_idle() {
        for p in [MachineProfile::hp(), MachineProfile::dell()] {
            let sz = p.sz_fraction();
            assert!(sz > p.fraction(MeasuredConfig::S3WIb), "{}", p.name());
            assert!(sz < p.s0_idle_fraction() / 2.0, "Sz is far below idle S0");
        }
    }

    #[test]
    fn table3_fractions_accessible() {
        let hp = MachineProfile::hp();
        assert!((hp.fraction(MeasuredConfig::S0WoIb) - 0.4616).abs() < 1e-12);
        assert!((hp.fraction(MeasuredConfig::S4WIb) - 0.0681).abs() < 1e-12);
        let dell = MachineProfile::dell();
        assert!((dell.fraction(MeasuredConfig::S3WIb) - 0.0871).abs() < 1e-12);
    }

    #[test]
    fn state_power_ordering() {
        let p = MachineProfile::hp();
        let s0 = p.state_power(SleepState::S0).get();
        let sz = p.state_power(SleepState::Sz).get();
        let s3 = p.state_power(SleepState::S3).get();
        let s4 = p.state_power(SleepState::S4).get();
        assert!(s0 > sz && sz > s3 && s3 > s4);
    }

    #[test]
    #[should_panic(expected = "shares of max power")]
    fn custom_rejects_bad_fraction() {
        MachineProfile::custom(
            "bad",
            Watts::new(100.0),
            [1.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        );
    }
}
