//! Energy consumption vs. server utilization (Fig. 1).
//!
//! Fig. 1 contrasts the *actual* power curve of a commodity server — which
//! already draws roughly half its peak power when completely idle — with
//! the *ideal*, energy-proportional behaviour (power linear in
//! utilization, zero at idle). The gap between the two curves is the
//! motivation for consolidating VMs onto fewer servers and suspending the
//! rest.

use crate::profile::MachineProfile;

/// The actual power fraction at `utilization ∈ [0, 1]`.
///
/// Model: `f(u) = idle + (1 − idle) · (2u − u²)`, the standard concave
/// "sub-linear savings" shape (power rises quickly at low utilization and
/// flattens near peak). It matches Fig. 1's solid curve: `f(0) = idle ≈
/// 0.5`, `f(1) = 1`.
pub fn power_fraction(profile: &MachineProfile, utilization: f64) -> f64 {
    let u = utilization.clamp(0.0, 1.0);
    let idle = profile.s0_idle_fraction();
    idle + (1.0 - idle) * (2.0 * u - u * u)
}

/// The ideal, energy-proportional power fraction (Fig. 1 dashed line).
pub fn ideal_fraction(utilization: f64) -> f64 {
    utilization.clamp(0.0, 1.0)
}

/// Energy efficiency at a utilization level: useful work per unit power,
/// normalized so a perfectly proportional server scores 1 everywhere.
/// Undefined (0) at zero utilization.
pub fn efficiency(profile: &MachineProfile, utilization: f64) -> f64 {
    let u = utilization.clamp(0.0, 1.0);
    if u == 0.0 {
        0.0
    } else {
        u / power_fraction(profile, u)
    }
}

/// One row of Fig. 1: utilization, actual and ideal fractions (in %).
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    /// Utilization in percent.
    pub utilization_pct: f64,
    /// Actual power in percent of max.
    pub actual_pct: f64,
    /// Ideal (proportional) power in percent of max.
    pub ideal_pct: f64,
}

/// Samples the Fig. 1 curves at `steps + 1` evenly spaced points.
pub fn figure1(profile: &MachineProfile, steps: usize) -> Vec<CurvePoint> {
    (0..=steps)
        .map(|i| {
            let u = i as f64 / steps as f64;
            CurvePoint {
                utilization_pct: u * 100.0,
                actual_pct: power_fraction(profile, u) * 100.0,
                ideal_pct: ideal_fraction(u) * 100.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zombieland_acpi::SleepState;

    #[test]
    fn endpoints() {
        let hp = MachineProfile::hp();
        assert!((power_fraction(&hp, 0.0) - hp.s0_idle_fraction()).abs() < 1e-12);
        assert!((power_fraction(&hp, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(ideal_fraction(0.0), 0.0);
        assert_eq!(ideal_fraction(1.0), 1.0);
    }

    #[test]
    fn actual_dominates_ideal() {
        let hp = MachineProfile::hp();
        for i in 0..=100 {
            let u = i as f64 / 100.0;
            assert!(power_fraction(&hp, u) >= ideal_fraction(u), "u={u}");
        }
    }

    #[test]
    fn monotone_and_concave() {
        let hp = MachineProfile::hp();
        let mut prev = power_fraction(&hp, 0.0);
        let mut prev_delta = f64::INFINITY;
        for i in 1..=100 {
            let u = i as f64 / 100.0;
            let f = power_fraction(&hp, u);
            let delta = f - prev;
            assert!(delta >= 0.0, "monotone at u={u}");
            assert!(delta <= prev_delta + 1e-12, "concave at u={u}");
            prev = f;
            prev_delta = delta;
        }
    }

    #[test]
    fn efficiency_improves_with_utilization() {
        let hp = MachineProfile::hp();
        assert!(efficiency(&hp, 0.9) > efficiency(&hp, 0.3));
        assert!(efficiency(&hp, 0.3) > efficiency(&hp, 0.05));
        assert_eq!(efficiency(&hp, 0.0), 0.0);
        // Even at 100 % a real server only reaches proportional parity.
        assert!((efficiency(&hp, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn figure1_shape() {
        let hp = MachineProfile::hp();
        let pts = figure1(&hp, 10);
        assert_eq!(pts.len(), 11);
        // Idle actual power near 50 % (the paper's S0idle marker).
        assert!(pts[0].actual_pct > 45.0 && pts[0].actual_pct < 60.0);
        assert_eq!(pts[0].ideal_pct, 0.0);
        assert!((pts[10].actual_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sleep_states_sit_below_the_curve() {
        // Fig. 1 marks S3/S4/S5 near the bottom: all far below S0 idle.
        let hp = MachineProfile::hp();
        let idle = power_fraction(&hp, 0.0);
        for s in [
            SleepState::S3,
            SleepState::S4,
            SleepState::S5,
            SleepState::Sz,
        ] {
            assert!(hp.state_fraction(s) < idle / 3.0, "{s}");
        }
    }
}
