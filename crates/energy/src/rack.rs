//! Rack-level energy comparison of disaggregation architectures (Fig. 4).
//!
//! Fig. 4 works one example: a rack of three servers whose aggregate
//! demand needs about one server's worth of CPU but two servers' worth of
//! memory (the memory-bound regime motivating the paper). It then
//! estimates the rack energy, in units of `Emax` (one server's maximum
//! draw), under four architectures. The paper's rough totals are
//! 2.1 / 1.15 / 1.8 / 1.2 × Emax; this module computes the same totals
//! from the machine profile instead of hand-waving, which lands within a
//! few tenths of the paper's guidance values while preserving the ordering
//! that matters: ideal < zombie ≪ micro-servers < server-centric.

use zombieland_acpi::SleepState;

use crate::curve::power_fraction;
use crate::profile::MachineProfile;

/// The demand placed on the rack, in server-equivalents.
#[derive(Clone, Copy, Debug)]
pub struct RackDemand {
    /// Number of servers in the rack.
    pub servers: u32,
    /// CPU demand (1.0 = one fully busy server's CPU).
    pub cpu: f64,
    /// Memory demand (1.0 = one server's full RAM).
    pub mem: f64,
}

impl RackDemand {
    /// The Fig. 4 example: 3 servers, CPU-light, memory-heavy (memory
    /// demand ≈ 2× CPU demand, the trend from Fig. 2). The demands are
    /// fractional because real aggregate demand is — and because that is
    /// what exposes the allocation-granularity difference between full
    /// servers and micro-servers.
    pub fn figure4() -> Self {
        RackDemand {
            servers: 3,
            cpu: 0.9,
            mem: 1.6,
        }
    }
}

/// Energy estimate for one architecture, with a per-component breakdown.
#[derive(Clone, Debug)]
pub struct RackEnergy {
    /// Architecture name.
    pub architecture: &'static str,
    /// Total rack draw in units of one server's `Emax`.
    pub total_emax: f64,
    /// `(component, emax)` breakdown.
    pub breakdown: Vec<(String, f64)>,
}

/// (a) Server-centric: each board bundles CPU and memory. Memory demand
/// dictates how many servers must stay on; their CPUs run mostly idle.
/// Spare servers are suspended to S3.
pub fn server_centric(p: &MachineProfile, d: &RackDemand) -> RackEnergy {
    let servers_on = d.mem.ceil().max(1.0) as u32;
    let util_each = (d.cpu / servers_on as f64).min(1.0);
    let per_server = power_fraction(p, util_each);
    let suspended = d.servers.saturating_sub(servers_on);
    let s3 = p.state_fraction(SleepState::S3);
    RackEnergy {
        architecture: "server-centric",
        total_emax: servers_on as f64 * per_server + suspended as f64 * s3,
        breakdown: vec![
            (
                format!("{servers_on} servers on at {:.0}% cpu", util_each * 100.0),
                servers_on as f64 * per_server,
            ),
            (format!("{suspended} servers in S3"), suspended as f64 * s3),
        ],
    }
}

/// (b) Ideal resource disaggregation: independent CPU and memory boards;
/// unused boards are powered off entirely. Board maxima are fractions of a
/// bundled server's `Emax` (a server is roughly 65 % compute, 28 % memory);
/// the fabric interconnect adds a fixed tax.
pub fn ideal_disaggregation(_p: &MachineProfile, d: &RackDemand) -> RackEnergy {
    const CPU_BOARD_MAX: f64 = 0.65;
    const MEM_BOARD_MAX: f64 = 0.28;
    const INTERCONNECT: f64 = 0.08;
    let cpu_boards = d.cpu.ceil() as u32;
    let mem_boards = d.mem.ceil() as u32;
    let cpu_draw = d.cpu * CPU_BOARD_MAX; // Boards scale with load.
    let mem_draw = d.mem * MEM_BOARD_MAX; // DRAM draw scales with demand.
    RackEnergy {
        architecture: "ideal disaggregation",
        total_emax: cpu_draw + mem_draw + INTERCONNECT,
        breakdown: vec![
            (format!("{cpu_boards} cpu boards"), cpu_draw),
            (format!("{mem_boards} memory boards"), mem_draw),
            ("interconnect".to_string(), INTERCONNECT),
        ],
    }
}

/// (c) Micro-servers: the rack is split into 4× as many quarter-size
/// {CPU, memory} nodes (SeaMicro-style) sharing disaggregated
/// network/storage. Residual waste shrinks with node size, but memory
/// still cannot be served by a suspended node, so memory demand keeps
/// nodes powered.
pub fn micro_servers(p: &MachineProfile, d: &RackDemand) -> RackEnergy {
    let per_server_micros = 4u32;
    let micros = d.servers * per_server_micros;
    let micro_emax = 1.0 / per_server_micros as f64;
    let mem_per_micro = micro_emax; // Memory scales with node size.
    let micros_on = ((d.mem / mem_per_micro).ceil() as u32).min(micros).max(1);
    let util_each = (d.cpu / (micros_on as f64 * micro_emax)).min(1.0);
    let per_micro = power_fraction(p, util_each) * micro_emax;
    let suspended = micros - micros_on;
    let s3 = p.state_fraction(SleepState::S3) * micro_emax;
    RackEnergy {
        architecture: "micro-servers",
        total_emax: micros_on as f64 * per_micro + suspended as f64 * s3,
        breakdown: vec![
            (
                format!(
                    "{micros_on} micro-servers on at {:.0}% cpu",
                    util_each * 100.0
                ),
                micros_on as f64 * per_micro,
            ),
            (
                format!("{suspended} micro-servers in S3"),
                suspended as f64 * s3,
            ),
        ],
    }
}

/// (d) Zombie servers: VMs consolidate onto the fewest servers whose CPU
/// satisfies demand; the remaining *memory* demand is served by servers
/// pushed into Sz; anything left over sleeps in S3.
pub fn zombie(p: &MachineProfile, d: &RackDemand) -> RackEnergy {
    let active = d.cpu.ceil().max(1.0) as u32;
    let util_each = (d.cpu / active as f64).min(1.0);
    let per_active = power_fraction(p, util_each);
    // Memory not already covered by the active servers' own RAM.
    let residual_mem = (d.mem - active as f64).max(0.0);
    let zombies = (residual_mem.ceil() as u32).min(d.servers - active);
    let s3_count = d.servers - active - zombies;
    let sz = p.sz_fraction();
    let s3 = p.state_fraction(SleepState::S3);
    RackEnergy {
        architecture: "zombie (Sz)",
        total_emax: active as f64 * per_active + zombies as f64 * sz + s3_count as f64 * s3,
        breakdown: vec![
            (
                format!("{active} servers on at {:.0}% cpu", util_each * 100.0),
                active as f64 * per_active,
            ),
            (format!("{zombies} servers in Sz"), zombies as f64 * sz),
            (format!("{s3_count} servers in S3"), s3_count as f64 * s3),
        ],
    }
}

/// All four Fig. 4 architectures, in the figure's order.
pub fn figure4(p: &MachineProfile, d: &RackDemand) -> [RackEnergy; 4] {
    [
        server_centric(p, d),
        ideal_disaggregation(p, d),
        micro_servers(p, d),
        zombie(p, d),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals() -> (f64, f64, f64, f64) {
        let p = MachineProfile::hp();
        let d = RackDemand::figure4();
        let [sc, ideal, micro, z] = figure4(&p, &d);
        (
            sc.total_emax,
            ideal.total_emax,
            micro.total_emax,
            z.total_emax,
        )
    }

    #[test]
    fn ordering_matches_paper() {
        // Paper: 1.15 (ideal) < 1.2 (zombie) < 1.8 (micro) < 2.1 (s-c).
        let (sc, ideal, micro, z) = totals();
        assert!(ideal < z, "ideal {ideal} < zombie {z}");
        assert!(z < micro, "zombie {z} < micro {micro}");
        assert!(micro < sc, "micro {micro} < server-centric {sc}");
    }

    #[test]
    fn magnitudes_near_paper_guidance() {
        let (sc, ideal, micro, z) = totals();
        assert!((ideal - 1.15).abs() < 0.15, "ideal {ideal}");
        assert!((z - 1.2).abs() < 0.15, "zombie {z}");
        assert!((micro - 1.8).abs() < 0.25, "micro {micro}");
        assert!((sc - 2.1).abs() < 0.30, "server-centric {sc}");
    }

    #[test]
    fn zombie_close_to_ideal() {
        // The paper's headline: power-domain disaggregation gets within a
        // few percent of full board-level disaggregation.
        let (_, ideal, _, z) = totals();
        assert!((z - ideal) / ideal < 0.15);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let p = MachineProfile::dell();
        let d = RackDemand::figure4();
        for e in figure4(&p, &d) {
            let sum: f64 = e.breakdown.iter().map(|(_, v)| v).sum();
            assert!((sum - e.total_emax).abs() < 1e-9, "{}", e.architecture);
        }
    }

    #[test]
    fn cpu_bound_rack_equalizes_architectures() {
        // When demand is CPU-bound (mem fits active servers), zombies add
        // nothing: zombie == consolidation-only server-centric.
        let p = MachineProfile::hp();
        let d = RackDemand {
            servers: 3,
            cpu: 2.0,
            mem: 1.5,
        };
        let z = zombie(&p, &d);
        let sc = server_centric(&p, &d);
        assert!(z.total_emax <= sc.total_emax + 1e-9);
        // No zombies were needed.
        assert!(z.breakdown[1].0.starts_with("0 servers in Sz"));
    }
}
