//! Policy extension points and the static registry.
//!
//! The simulator's mechanics (host accounting, the remote pool, the
//! two-phase evacuation protocol) live in [`crate::dc`]; everything a
//! *policy* decides goes through two trait objects:
//!
//! - [`PlacementPolicy`] — can an active host admit an arriving VM, and
//!   which host to wake when none can.
//! - [`ConsolidationPolicy`] — whether/how periodic consolidation runs:
//!   the underload threshold, the migration feasibility rule, what an
//!   emptied host becomes (S3 or Sz) and whether idle zombies demote.
//!
//! Implementations delegate their parameters to the existing
//! `zombieland_cloud` types ([`NovaScheduler`], [`Neat`]) but keep the
//! simulator's exact admission arithmetic — same epsilons, same
//! evaluation order — because the refactor contract is bit-for-bit
//! identical reports (see `tests/policy_conformance.rs` and
//! `tests/golden_report.rs`).
//!
//! Policies register in [`REGISTRY`] under a CLI key; [`lookup`]
//! resolves names case-insensitively, which is how `--policy` and
//! `--list-policies` see them. Adding a policy means implementing the
//! traits and appending a [`PolicySpec`] — no simulator edits.

use core::fmt;

use zombieland_cloud::consolidation::{ConsolidationMode, Neat};
use zombieland_cloud::placement::NovaScheduler;

/// A candidate host's load, precomputed by the simulator for admission
/// checks. Capacities are normalized to "one server" = 1.0 on both axes.
#[derive(Clone, Copy, Debug)]
pub struct HostLoad {
    /// Booked CPU of resident VMs.
    pub cpu_booked: f64,
    /// Actual CPU utilization.
    pub cpu_used: f64,
    /// Free local memory after the hypervisor reserve,
    /// `(usable_mem − mem_local).max(0)`.
    pub free_local: f64,
}

/// Which host to wake when placement fails on every active host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WakePreference {
    /// The first (lowest-index) sleeping or zombie host.
    FirstSleeping,
    /// The zombie lending the least remote memory (`GS_get_lru_zombie`),
    /// falling back to the first sleeping host.
    IdleZombieFirst,
}

/// Placement-side policy decisions.
pub trait PlacementPolicy: Send + Sync + fmt::Debug {
    /// Whether `host` can admit an arriving VM booking `cpu`/`mem` with
    /// actual usage `cpu_used`, given `pool` free remote memory in the
    /// host's rack. Returns the local memory share the VM would take, or
    /// `None` to reject.
    fn admit(&self, host: &HostLoad, cpu: f64, cpu_used: f64, mem: f64, pool: f64) -> Option<f64>;

    /// Whether placement consumes the rack-local remote pool (drives the
    /// per-scan pool snapshot; policies without remote memory skip it).
    fn uses_remote_pool(&self) -> bool {
        false
    }

    /// Which non-active host to wake when no active host fits.
    fn wake_preference(&self) -> WakePreference {
        WakePreference::FirstSleeping
    }
}

/// Consolidation-side policy decisions.
pub trait ConsolidationPolicy: Send + Sync + fmt::Debug {
    /// Whether periodic consolidation runs at all (the AlwaysOn baseline
    /// and the NoConsolidate toy say no).
    fn enabled(&self) -> bool {
        true
    }

    /// Hosts below this actual CPU utilization are evacuation candidates.
    fn underload_threshold(&self) -> f64;

    /// Whether idle VMs' cold memory parks on memory servers before the
    /// evacuation pass (Oasis partial migration).
    fn parks_idle_memory(&self) -> bool {
        false
    }

    /// What an emptied host becomes: `true` → Sz (its memory joins the
    /// rack pool), `false` → S3.
    fn evacuates_to_zombie(&self) -> bool {
        false
    }

    /// Whether zombies serving nothing demote to S3 when the free pool
    /// holds generous headroom (§4.4).
    fn demotes_idle_zombies(&self) -> bool {
        false
    }

    /// The memory footprint a migrating VM must re-place: `booked` is its
    /// booking, `local` its current local share (`None` if untracked).
    /// Vanilla consolidators move the local share; ZombieStack re-places
    /// the full booking (the 30 %-of-WSS rule re-splits it).
    fn migration_footprint(&self, booked: f64, local: Option<f64>) -> f64 {
        local.unwrap_or(booked)
    }

    /// Whether `host` can receive the migrating VM `vm`. `pool` is the
    /// free remote pool of the host's rack, `cpu_fill_cap` the
    /// configured booked-CPU packing cap.
    fn accepts_migration(
        &self,
        host: &HostLoad,
        vm: &MigrantVm,
        pool: f64,
        cpu_fill_cap: f64,
    ) -> bool;
}

/// A migrating VM's demand, as judged by
/// [`ConsolidationPolicy::accepts_migration`].
#[derive(Clone, Copy, Debug)]
pub struct MigrantVm {
    /// Booked CPU share.
    pub cpu_booked: f64,
    /// Actual CPU utilization.
    pub cpu_used: f64,
    /// Memory footprint to re-place on the target (already filtered
    /// through [`ConsolidationPolicy::migration_footprint`]).
    pub mem: f64,
    /// Estimated working-set size (the 30 %-of-WSS rule's input).
    pub wss: f64,
}

// ---------------------------------------------------------------------
// Implementations.
// ---------------------------------------------------------------------

/// Vanilla Nova placement: the full booking must fit locally.
#[derive(Debug)]
pub struct FullBookingPlacement {
    nova: NovaScheduler,
}

impl PlacementPolicy for FullBookingPlacement {
    fn admit(&self, h: &HostLoad, cpu: f64, _cpu_used: f64, mem: f64, _pool: f64) -> Option<f64> {
        // min_local_fraction is 1.0 here, so the memory condition is the
        // classic "all booked memory local".
        if h.cpu_booked + cpu > 1.0 + 1e-9
            || h.free_local + 1e-9 < self.nova.min_local_fraction * mem
        {
            None
        } else {
            Some(mem)
        }
    }
}

/// ZombieStack placement: usage-aware CPU admission with a bounded
/// booking overcommit, the 50 % local rule, remote share from the rack
/// pool.
#[derive(Debug)]
pub struct ZombieStackPlacement {
    nova: NovaScheduler,
}

impl PlacementPolicy for ZombieStackPlacement {
    fn admit(&self, h: &HostLoad, cpu: f64, cpu_used: f64, mem: f64, pool: f64) -> Option<f64> {
        // Usage-aware CPU admission with a bounded booking overcommit,
        // mirroring the consolidation rule, so that arrivals can land on
        // usage-packed hosts instead of waking zombies.
        if h.cpu_used + cpu_used > 0.85 + 1e-9 || h.cpu_booked + cpu > 1.3 + 1e-9 {
            return None;
        }
        let local = mem.min(h.free_local);
        if local + 1e-9 < self.nova.min_local_fraction * mem {
            return None;
        }
        if mem - local > pool + 1e-9 {
            return None;
        }
        Some(local)
    }

    fn uses_remote_pool(&self) -> bool {
        true
    }

    fn wake_preference(&self) -> WakePreference {
        WakePreference::IdleZombieFirst
    }
}

/// Consolidation disabled (AlwaysOn baseline, NoConsolidate toy).
#[derive(Debug)]
pub struct DisabledConsolidation {
    neat: Neat,
}

impl ConsolidationPolicy for DisabledConsolidation {
    fn enabled(&self) -> bool {
        false
    }

    fn underload_threshold(&self) -> f64 {
        self.neat.underload_threshold
    }

    fn accepts_migration(
        &self,
        _host: &HostLoad,
        _vm: &MigrantVm,
        _pool: f64,
        _cpu_fill_cap: f64,
    ) -> bool {
        false
    }
}

/// Vanilla Neat consolidation: full-booking migration targets, emptied
/// hosts suspend to S3.
#[derive(Debug)]
pub struct VanillaNeatConsolidation {
    neat: Neat,
    /// Oasis layers partial migration on top of the same planner.
    parks: bool,
}

impl ConsolidationPolicy for VanillaNeatConsolidation {
    fn underload_threshold(&self) -> f64 {
        self.neat.underload_threshold
    }

    fn parks_idle_memory(&self) -> bool {
        self.parks
    }

    fn accepts_migration(
        &self,
        h: &HostLoad,
        vm: &MigrantVm,
        _pool: f64,
        cpu_fill_cap: f64,
    ) -> bool {
        h.cpu_booked + vm.cpu_booked <= cpu_fill_cap + 1e-9 && h.free_local + 1e-9 >= vm.mem
    }
}

/// ZombieStack consolidation: the 30 %-of-WSS rule, usage-based CPU
/// packing, emptied hosts enter Sz, idle zombies demote to S3.
#[derive(Debug)]
pub struct ZombieStackConsolidation {
    neat: Neat,
}

impl ConsolidationPolicy for ZombieStackConsolidation {
    fn underload_threshold(&self) -> f64 {
        self.neat.underload_threshold
    }

    fn evacuates_to_zombie(&self) -> bool {
        true
    }

    fn demotes_idle_zombies(&self) -> bool {
        true
    }

    fn migration_footprint(&self, booked: f64, _local: Option<f64>) -> f64 {
        // The 30 %-of-WSS rule re-splits the whole booking on the target.
        booked
    }

    fn accepts_migration(
        &self,
        h: &HostLoad,
        vm: &MigrantVm,
        pool: f64,
        _cpu_fill_cap: f64,
    ) -> bool {
        // Usage-based CPU packing with a bounded booking overcommit.
        if h.cpu_used + vm.cpu_used > 0.85 + 1e-9 || h.cpu_booked + vm.cpu_booked > 1.3 + 1e-9 {
            return false;
        }
        // The 30 %-of-WSS rule, as in `Neat::fits` (ZombieStack mode).
        let local = vm.mem.min(h.free_local);
        local + 1e-9 >= 0.30 * vm.wss && (vm.mem - local) <= pool + 1e-9
    }
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

/// One registered policy: its CLI key, figure label and the two
/// strategy objects the simulation loop calls through.
pub struct PolicySpec {
    /// CLI name (lowercase; `--policy <key>` and [`lookup`]).
    pub key: &'static str,
    /// Figure/report label ([`crate::SimReport::policy`]).
    pub label: &'static str,
    /// One-line description for `--list-policies`.
    pub summary: &'static str,
    /// Placement-side decisions.
    pub placement: &'static dyn PlacementPolicy,
    /// Consolidation-side decisions.
    pub consolidation: &'static dyn ConsolidationPolicy,
}

impl fmt::Debug for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicySpec")
            .field("key", &self.key)
            .finish()
    }
}

static FULL_BOOKING: FullBookingPlacement = FullBookingPlacement {
    nova: NovaScheduler::vanilla(),
};
static ZOMBIE_PLACEMENT: ZombieStackPlacement = ZombieStackPlacement {
    nova: NovaScheduler::zombiestack(),
};
static DISABLED: DisabledConsolidation = DisabledConsolidation {
    neat: Neat::new(ConsolidationMode::VanillaNeat),
};
static VANILLA_NEAT: VanillaNeatConsolidation = VanillaNeatConsolidation {
    neat: Neat::new(ConsolidationMode::VanillaNeat),
    parks: false,
};
static OASIS_NEAT: VanillaNeatConsolidation = VanillaNeatConsolidation {
    neat: Neat::new(ConsolidationMode::VanillaNeat),
    parks: true,
};
static ZOMBIE_CONSOLIDATION: ZombieStackConsolidation = ZombieStackConsolidation {
    neat: Neat::new(ConsolidationMode::ZombieStack),
};

/// The AlwaysOn baseline.
pub static ALWAYS_ON: PolicySpec = PolicySpec {
    key: "alwayson",
    label: "AlwaysOn",
    summary: "no power management; the savings baseline",
    placement: &FULL_BOOKING,
    consolidation: &DISABLED,
};

/// Vanilla OpenStack Neat.
pub static NEAT: PolicySpec = PolicySpec {
    key: "neat",
    label: "Neat",
    summary: "vanilla Neat consolidation; emptied hosts suspend to S3",
    placement: &FULL_BOOKING,
    consolidation: &VANILLA_NEAT,
};

/// Oasis hybrid consolidation.
pub static OASIS: PolicySpec = PolicySpec {
    key: "oasis",
    label: "Oasis",
    summary: "Neat plus partial migration of idle VMs onto memory servers",
    placement: &FULL_BOOKING,
    consolidation: &OASIS_NEAT,
};

/// The paper's system.
pub static ZOMBIE_STACK: PolicySpec = PolicySpec {
    key: "zombiestack",
    label: "ZombieStack",
    summary: "50% local placement, 30%-of-WSS consolidation, Sz zombies lend the rack pool",
    placement: &ZOMBIE_PLACEMENT,
    consolidation: &ZOMBIE_CONSOLIDATION,
};

/// A toy policy demonstrating registry extension: AlwaysOn's mechanics
/// under its own name (placement without consolidation).
pub static NO_CONSOLIDATE: PolicySpec = PolicySpec {
    key: "noconsolidate",
    label: "NoConsolidate",
    summary: "toy: vanilla placement with consolidation switched off",
    placement: &FULL_BOOKING,
    consolidation: &DISABLED,
};

/// Every registered policy, in listing order (paper policies first).
pub static REGISTRY: [&PolicySpec; 5] = [&ALWAYS_ON, &NEAT, &OASIS, &ZOMBIE_STACK, &NO_CONSOLIDATE];

/// Resolves a policy by CLI key or figure label, case-insensitively.
pub fn lookup(name: &str) -> Option<&'static PolicySpec> {
    REGISTRY
        .iter()
        .copied()
        .find(|s| s.key.eq_ignore_ascii_case(name) || s.label.eq_ignore_ascii_case(name))
}

/// The resource-management policies of the paper's evaluation, as a
/// closed enum for call sites that enumerate them (Fig. 10 grids,
/// tests). Each maps onto its registry entry via [`PolicyKind::spec`];
/// policies outside the paper (like [`NO_CONSOLIDATE`]) exist only in
/// the registry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyKind {
    /// No power management (baseline).
    AlwaysOn,
    /// Vanilla Neat consolidation (S3 suspends).
    Neat,
    /// Oasis hybrid consolidation (partial migration + memory servers).
    Oasis,
    /// The paper's system.
    ZombieStack,
}

impl PolicyKind {
    /// The registry entry implementing this policy.
    pub fn spec(self) -> &'static PolicySpec {
        match self {
            PolicyKind::AlwaysOn => &ALWAYS_ON,
            PolicyKind::Neat => &NEAT,
            PolicyKind::Oasis => &OASIS,
            PolicyKind::ZombieStack => &ZOMBIE_STACK,
        }
    }

    /// Figure label.
    pub fn name(self) -> &'static str {
        self.spec().label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_keys_are_unique_and_lowercase() {
        for (i, s) in REGISTRY.iter().enumerate() {
            assert_eq!(s.key, s.key.to_ascii_lowercase(), "{}", s.key);
            for other in &REGISTRY[i + 1..] {
                assert_ne!(s.key, other.key);
                assert_ne!(s.label, other.label);
            }
        }
    }

    #[test]
    fn lookup_is_case_insensitive_over_key_and_label() {
        assert!(std::ptr::eq(lookup("zombiestack").unwrap(), &ZOMBIE_STACK));
        assert!(std::ptr::eq(lookup("ZombieStack").unwrap(), &ZOMBIE_STACK));
        assert!(std::ptr::eq(lookup("ALWAYSON").unwrap(), &ALWAYS_ON));
        assert!(std::ptr::eq(
            lookup("NoConsolidate").unwrap(),
            &NO_CONSOLIDATE
        ));
        assert!(lookup("nosuchpolicy").is_none());
    }

    #[test]
    fn every_kind_resolves_to_its_registry_entry() {
        for kind in [
            PolicyKind::AlwaysOn,
            PolicyKind::Neat,
            PolicyKind::Oasis,
            PolicyKind::ZombieStack,
        ] {
            let spec = kind.spec();
            assert!(std::ptr::eq(lookup(spec.key).unwrap(), spec));
            assert_eq!(kind.name(), spec.label);
        }
    }

    #[test]
    fn paper_policy_shape() {
        assert!(!ALWAYS_ON.consolidation.enabled());
        assert!(!NO_CONSOLIDATE.consolidation.enabled());
        assert!(NEAT.consolidation.enabled());
        assert!(OASIS.consolidation.parks_idle_memory());
        assert!(!NEAT.consolidation.parks_idle_memory());
        assert!(ZOMBIE_STACK.consolidation.evacuates_to_zombie());
        assert!(ZOMBIE_STACK.consolidation.demotes_idle_zombies());
        assert!(ZOMBIE_STACK.placement.uses_remote_pool());
        assert_eq!(
            ZOMBIE_STACK.placement.wake_preference(),
            WakePreference::IdleZombieFirst
        );
        assert_eq!(
            NEAT.placement.wake_preference(),
            WakePreference::FirstSleeping
        );
    }

    #[test]
    fn migration_footprint_rules() {
        // Vanilla moves the tracked local share; ZombieStack re-places
        // the full booking.
        assert_eq!(NEAT.consolidation.migration_footprint(2.0, Some(0.5)), 0.5);
        assert_eq!(NEAT.consolidation.migration_footprint(2.0, None), 2.0);
        assert_eq!(
            ZOMBIE_STACK
                .consolidation
                .migration_footprint(2.0, Some(0.5)),
            2.0
        );
    }
}
