//! Energy integration: per-host draw, clock advancement, transition
//! charges.
//!
//! Per-host draw routes through the [`zombieland_energy::PowerModel`]
//! carried by [`crate::SimConfig::power`] (the Table-3-calibrated
//! [`zombieland_energy::Table3Power`] by default), translating the
//! simulator's host state into the model's [`HostDraw`] vocabulary.

use zombieland_energy::{HostDraw, MachineProfile};
use zombieland_simcore::{SimDuration, SimTime, Watts};

use crate::dc::{Dc, HState};

impl Dc {
    pub(crate) fn profile(&self) -> &MachineProfile {
        &self.cfg.profile
    }

    /// Current power of one host given its state/utilization.
    ///
    /// `host` must index an existing host; the all-idle initial state
    /// samples host 0 (guarded by the fleet-size check in
    /// [`Dc::new`](crate::dc::Dc::new)). An out-of-range index is a
    /// simulator bug — it trips the `debug_assert!` in debug builds and
    /// draws zero watts in release rather than silently pricing a
    /// phantom "active" host, as the old `unwrap_or(HState::Active)`
    /// fallback did.
    pub(crate) fn host_power(&self, host: usize) -> Watts {
        debug_assert!(
            host < self.hosts.len(),
            "host_power({host}) out of range ({} hosts)",
            self.hosts.len()
        );
        let Some(&state) = self.hosts.state.get(host) else {
            return Watts::ZERO;
        };
        let draw = match state {
            HState::Active => HostDraw::Active {
                utilization: self.hosts.cpu_used[host],
            },
            HState::Zombie => HostDraw::Zombie,
            HState::Sleeping => HostDraw::Suspended,
        };
        // Per-host model: the per-generation scaling in heterogeneous
        // fleets; in uniform fleets every entry is the config model, so
        // this is the same call the global-model code made.
        self.hosts.power[host].host_power(self.profile(), draw)
    }

    /// Integrates energy up to `now` and advances the clock.
    pub(crate) fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last);
        if dt > SimDuration::ZERO {
            let parked_power =
                self.profile().max_power() * self.oasis.memory_server_power(self.parked_mem);
            // The zombie backend's pool is host memory, already priced in
            // `total_power`; a shared tier adds its own per-rack draw. The
            // first branch must stay the exact historical expression — it
            // is what keeps pre-backend golden reports byte-identical.
            let backend = self.cfg.backend.backend;
            let fleet = if backend.pools_host_memory() {
                self.total_power + parked_power
            } else {
                let mut frac = 0.0;
                for &alloc in &self.cxl_allocated {
                    frac += backend
                        .pool_power_fraction(self.cfg.cxl_capacity, alloc)
                        .unwrap_or(0.0);
                }
                self.total_power + parked_power + self.profile().max_power() * frac
            };
            self.energy += fleet.over(dt);
            let secs = dt.as_secs_f64();
            for (i, &count) in self.state_counts.iter().enumerate() {
                self.report.state_seconds[i] += count as f64 * secs;
            }
            self.last = now;
        } else if now > self.last {
            self.last = now;
        }
    }

    /// Charges the energy of one power-state transition of `host`: the
    /// platform runs its enter/exit sequence at near-full draw for the
    /// latency the firmware model reports, priced by the host's own
    /// power model (per-generation in heterogeneous fleets).
    pub(crate) fn charge_transition(&mut self, host: usize, from: HState, to: HState) {
        if !self.cfg.transition_costs {
            return;
        }
        // Latencies from the firmware model: S3/Sz enter ~3 s, exit ~4 s.
        let latency = match (from, to) {
            (HState::Active, _) => SimDuration::from_millis(2_950),
            (_, HState::Active) => SimDuration::from_millis(3_800),
            _ => SimDuration::ZERO,
        };
        if latency > SimDuration::ZERO {
            zombieland_obs::sink::counter_add("sim.transitions", 1);
            zombieland_obs::sink::hist_record("sim.transition_ns", latency.as_nanos());
        }
        self.energy += self.hosts.power[host]
            .transition_power(self.profile())
            .over(latency);
    }
}
