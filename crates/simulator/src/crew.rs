//! The shard scan crew: worker threads running read-only decision
//! scans across the simulator's rack shards in lock-step rounds.
//!
//! The sharded event loop (see `dc.rs` and DESIGN §12) keeps every
//! *mutation* on the coordinator thread, in the exact serial order —
//! that is what preserves bit-identical float accounting. What
//! decomposes is the *search*: each placement/wake/demotion decision is
//! a pure query over per-shard index sets, answered shard-by-shard and
//! merged by a total-order key. The crew exists to run those per-shard
//! queries concurrently when the fleet is large enough to pay for the
//! handoff.
//!
//! Protocol: one round per decision. The coordinator publishes
//! `(epoch, req, &Dc)` under the mutex and wakes the workers; worker
//! `w` scans shards `w, w + stride, …` (the coordinator takes stripe 0
//! itself), writes its best candidate into its slot, and the last
//! worker signals completion. The coordinator blocks until every worker
//! is done, so the `&Dc` published for the round never outlives it.
//! Whether a scan ran inline or on the crew is unobservable in the
//! output: both compute the same per-shard candidates and the same
//! merged minimum.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::dc::Dc;
use crate::policy::MigrantVm;

/// One shard-decomposable decision scan. Every variant is a read-only
/// query over one shard's index sets; all mutation stays with the
/// coordinator.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ScanReq {
    /// First active host in stacking order that admits an arrival.
    Admit { cpu: f64, cpu_used: f64, mem: f64 },
    /// First active host in stacking order that accepts a migration,
    /// skipping the evacuation source.
    Migrate { vm: MigrantVm, skip: usize },
    /// Least-lending zombie (the `IdleZombieFirst` wake preference).
    WakeZombie,
    /// Lowest-index non-active host (the wake fallback).
    Sleeping,
    /// Least-used active host (the overcommit fallback).
    LeastUsed,
    /// Lowest-index zombie lending nothing (§4.4 demotion candidate).
    IdleZombie,
}

/// A shard's best candidate: `(merge key, host index)`. Keys are
/// constructed so the tuple minimum across shards is exactly the host
/// the serial full scan would have picked — see [`Dc::scan_shard`].
pub(crate) type ScanHit = Option<(u64, usize)>;

/// Merges two shard candidates: tuple minimum, `None` loses to anything.
pub(crate) fn merge_hit(a: ScanHit, b: ScanHit) -> ScanHit {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Fleet size below which the crew never spawns: per-round condvar
/// handoff costs microseconds, which swamps the scan itself on small
/// fleets. Determinism does not depend on this gate — inline and crew
/// scans compute identical answers — so tests may pin any fleet size on
/// either side of it.
pub(crate) const CREW_MIN_FLEET: usize = 512;

/// State of the round in flight, guarded by the [`Shared`] mutex.
struct Round {
    /// Bumped once per round; workers wait for a change.
    epoch: u64,
    /// The coordinator's `&Dc` for this round, as a pointer-sized int
    /// (`0` between rounds). See the SAFETY note on [`Crew::round`].
    dc: usize,
    req: ScanReq,
    /// Workers still scanning this round.
    pending: usize,
    /// One result slot per worker.
    out: Vec<ScanHit>,
    quit: bool,
}

struct Shared {
    round: Mutex<Round>,
    go: Condvar,
    done: Condvar,
}

/// The crew handle owned by `Dc`. Dropping it shuts the workers down.
pub(crate) struct Crew {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Worker `w` owns shards `w, w + stride, …`; the coordinator is
    /// "worker 0".
    stride: usize,
}

impl Crew {
    /// Spawns a crew for `nshards` shards under a thread budget of
    /// `budget` (coordinator included). Returns `None` when the budget
    /// leaves no room for an extra worker.
    pub(crate) fn spawn(nshards: usize, budget: usize) -> Option<Crew> {
        let workers = budget.min(nshards).saturating_sub(1);
        if workers == 0 {
            return None;
        }
        let stride = workers + 1;
        let shared = Arc::new(Shared {
            round: Mutex::new(Round {
                epoch: 0,
                dc: 0,
                req: ScanReq::Sleeping,
                pending: 0,
                out: vec![None; workers],
                quit: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..=workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_main(&shared, w, stride))
            })
            .collect();
        Some(Crew {
            shared,
            handles,
            stride,
        })
    }

    /// Runs one scan round over every shard of `dc`, returning the
    /// merged best candidate. The coordinator scans its own shard
    /// stripe while the workers scan theirs.
    pub(crate) fn round(&self, dc: &Dc, req: ScanReq) -> ScanHit {
        {
            let mut st = self.shared.round.lock().expect("crew mutex");
            st.req = req;
            st.dc = dc as *const Dc as usize;
            st.pending = self.handles.len();
            st.epoch += 1;
            self.shared.go.notify_all();
        }
        let mut best = None;
        let mut s = 0;
        while s < dc.shard_count() {
            best = merge_hit(best, dc.scan_shard(s, &req));
            s += self.stride;
        }
        let mut st = self.shared.round.lock().expect("crew mutex");
        while st.pending > 0 {
            st = self.shared.done.wait(st).expect("crew mutex");
        }
        st.dc = 0;
        for &hit in &st.out {
            best = merge_hit(best, hit);
        }
        best
    }
}

impl Drop for Crew {
    fn drop(&mut self) {
        {
            let mut st = self.shared.round.lock().expect("crew mutex");
            st.quit = true;
            self.shared.go.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_main(shared: &Shared, w: usize, stride: usize) {
    let mut seen = 0u64;
    loop {
        let (epoch, req, dc_addr) = {
            let mut st = shared.round.lock().expect("crew mutex");
            loop {
                if st.quit {
                    return;
                }
                if st.epoch != seen {
                    break;
                }
                st = shared.go.wait(st).expect("crew mutex");
            }
            (st.epoch, st.req, st.dc)
        };
        seen = epoch;
        // SAFETY: `dc_addr` is the coordinator's `&Dc`, published under
        // the mutex for exactly this epoch. The coordinator blocks in
        // `round` until `pending` hits zero, so the reference is live
        // for the whole scan; `scan_shard` takes `&Dc` and the
        // coordinator performs no mutation while it waits, so the reads
        // are race-free. The mutex hand-offs order the publication
        // before our read and our results before the coordinator's
        // merge.
        let dc = unsafe { &*(dc_addr as *const Dc) };
        let mut best = None;
        let mut s = w;
        while s < dc.shard_count() {
            best = merge_hit(best, dc.scan_shard(s, &req));
            s += stride;
        }
        let mut st = shared.round.lock().expect("crew mutex");
        st.out[w - 1] = best;
        st.pending -= 1;
        if st.pending == 0 {
            shared.done.notify_one();
        }
    }
}
