//! Datacenter state: hosts, VMs, the rack-local remote pool, and the
//! index sets that keep the hot paths from scanning the full fleet.
//!
//! Everything here is *mechanism* — admission checks, the two-phase
//! evacuation protocol, pool carving, invariant validation. Every
//! policy *decision* routes through the [`crate::policy`] trait objects
//! carried by [`crate::SimConfig::policy`], so this module never
//! matches on a policy name.

use core::cmp::Ordering;
use std::collections::BTreeSet;

use zombieland_cloud::oasis::OasisConfig;
use zombieland_simcore::{Joules, SimTime, Watts};
use zombieland_trace::google::ClusterTrace;

use crate::policy::{HostLoad, WakePreference};
use crate::report::SimReport;
use crate::SimConfig;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum HState {
    Active,
    Zombie,
    Sleeping,
}

pub(crate) fn state_index(s: HState) -> usize {
    match s {
        HState::Active => 0,
        HState::Zombie => 1,
        HState::Sleeping => 2,
    }
}

#[derive(Clone, Debug)]
pub(crate) struct Host {
    pub(crate) state: HState,
    pub(crate) rack: u32,
    pub(crate) cpu_booked: f64,
    pub(crate) cpu_used: f64,
    pub(crate) mem_local: f64,
    /// Remote-pool memory allocated *from* this host (only when zombie).
    pub(crate) remote_allocated: f64,
    pub(crate) vms: Vec<usize>,
}

#[derive(Clone, Debug)]
pub(crate) struct VmState {
    pub(crate) host: usize,
    pub(crate) local_mem: f64,
    /// Remote-pool memory this VM holds (server-equivalents).
    pub(crate) remote: f64,
    pub(crate) parked: f64,
}

/// Ticks a freshly woken host is exempt from consolidation, damping
/// wake/suspend churn.
const WAKE_COOLDOWN_TICKS: u32 = 3;

/// Bookkeeping for one in-flight (two-phase) consolidation move.
#[derive(Clone, Copy, Debug)]
struct PendingMove {
    task: usize,
    source: usize,
    target: usize,
    old_local: f64,
    old_remote: f64,
    new_local: f64,
    taken: f64,
}

pub(crate) struct Dc {
    pub(crate) cfg: SimConfig,
    pub(crate) hosts: Vec<Host>,
    pub(crate) cooldown: Vec<u32>,
    pub(crate) vms: Vec<Option<VmState>>,
    pub(crate) parked_mem: f64,
    pub(crate) total_power: Watts,
    pub(crate) state_counts: [u64; 3],
    pub(crate) energy: Joules,
    pub(crate) last: SimTime,
    pub(crate) report: SimReport,
    pub(crate) oasis: OasisConfig,
    /// Index sets by host state, maintained by [`Dc::update_host`] so the
    /// hot paths (placement, wake, pool carving) never scan the full
    /// fleet. Iteration order is ascending host index — the same order
    /// the old full scans visited — so every float sum and every
    /// tie-break is bit-for-bit identical to the O(hosts) versions.
    pub(crate) active: BTreeSet<usize>,
    /// Active hosts keyed by `(cpu_booked, index)`, most-booked first
    /// with ties toward the lower index — exactly the stacking
    /// preference order, so placement scans stop at the *first* fitting
    /// entry instead of ranking the whole fleet. The key is the stored
    /// bits of `cpu_booked` at index time; [`Dc::update_host`]
    /// repositions entries whenever the value changes.
    pub(crate) active_by_booked: Vec<(f64, usize)>,
    /// Sleeping and zombie hosts (the wake candidates).
    pub(crate) nonactive: BTreeSet<usize>,
    /// Zombie hosts per rack (the rack-local remote pool's lenders).
    pub(crate) zombies_by_rack: Vec<BTreeSet<usize>>,
    /// Persistent sort buffer for the consolidation order (reused every
    /// tick instead of a fresh allocation).
    order_buf: Vec<usize>,
    /// Persistent buffer for the resident-VM snapshot in
    /// [`Dc::try_evacuate`].
    evac_buf: Vec<usize>,
    /// Per-rack free-pool snapshot taken at the start of each placement
    /// scan, so `fits` stops re-summing the pool per candidate host.
    pool_buf: Vec<f64>,
    /// Whether [`Dc::validate`] runs after each consolidation round:
    /// debug builds by default, or the scenario's `validate` switch
    /// (`ZL_VALIDATE=1`) in release.
    validate_on: bool,
}

/// Whether the O(hosts × vms) invariant sweep runs: always in debug
/// builds (unless `ZL_VALIDATE=0`), and only on `ZL_VALIDATE=1` in
/// release — release runs skip the sweep entirely. The switch is the
/// scenario layer's `validate` field, so env and `--scenario` files
/// agree on one spelling.
fn validate_enabled() -> bool {
    zombieland_core::scenario::current()
        .validate
        .unwrap_or(cfg!(debug_assertions))
}

impl Dc {
    /// Builds the all-active initial fleet for `trace` under `cfg`.
    ///
    /// `cfg` must have passed [`SimConfig::validate`]; in particular
    /// `racks >= 1`, so the rack assignment below never divides by zero
    /// (the old code clamped with `racks.max(1)` at every use site).
    pub(crate) fn new(trace: &ClusterTrace, cfg: &SimConfig) -> Dc {
        let n = trace.config().servers as usize;
        let mut dc = Dc {
            hosts: (0..n)
                .map(|i| Host {
                    state: HState::Active,
                    rack: i as u32 % cfg.racks,
                    cpu_booked: 0.0,
                    cpu_used: 0.0,
                    mem_local: 0.0,
                    remote_allocated: 0.0,
                    vms: Vec::new(),
                })
                .collect(),
            cooldown: vec![0; n],
            vms: vec![None; trace.tasks().len()],
            parked_mem: 0.0,
            total_power: Watts::ZERO,
            energy: Joules::ZERO,
            last: SimTime::ZERO,
            report: SimReport {
                policy: cfg.policy.label,
                energy: Joules::ZERO,
                migrations: 0,
                wakeups: 0,
                dropped: 0,
                overcommitted: 0,
                state_seconds: [0.0; 3],
                peak_parked: 0.0,
                timeline: Vec::new(),
            },
            oasis: OasisConfig::default(),
            active: (0..n).collect(),
            active_by_booked: (0..n).map(|i| (0.0, i)).collect(),
            nonactive: BTreeSet::new(),
            zombies_by_rack: vec![BTreeSet::new(); cfg.racks as usize],
            order_buf: Vec::new(),
            evac_buf: Vec::new(),
            pool_buf: Vec::new(),
            validate_on: validate_enabled(),
            cfg: cfg.clone(),
            state_counts: [n as u64, 0, 0],
        };
        // Initial fleet power: everything on and idle. An empty fleet
        // has no host 0 to sample (and draws nothing).
        if n > 0 {
            dc.total_power = dc.host_power(0) * n as f64;
        }
        dc
    }

    /// Applies a mutation to host `h`, keeping the fleet power total
    /// consistent.
    pub(crate) fn update_host(&mut self, h: usize, f: impl FnOnce(&mut Host)) {
        let before = self.host_power(h);
        let state_before = self.hosts[h].state;
        let booked_before = self.hosts[h].cpu_booked;
        f(&mut self.hosts[h]);
        let after = self.host_power(h);
        let state_after = self.hosts[h].state;
        let booked_after = self.hosts[h].cpu_booked;
        if state_before != state_after {
            self.state_counts[state_index(state_before)] -= 1;
            self.state_counts[state_index(state_after)] += 1;
            self.index_host(h, state_before, state_after, booked_before, booked_after);
        } else if state_after == HState::Active
            && booked_after.total_cmp(&booked_before) != Ordering::Equal
        {
            // total_cmp (not `!=`) so a -0.0/+0.0 flip still repositions
            // and the stored key always matches the host's exact bits.
            self.reposition_booked(h, booked_before, booked_after);
        }
        self.total_power =
            Watts::new((self.total_power.get() - before.get() + after.get()).max(0.0));
    }

    /// The ordering of [`Dc::active_by_booked`]: most-booked first, ties
    /// toward the lower host index (the stacking preference order).
    fn booked_order(a: &(f64, usize), b: &(f64, usize)) -> Ordering {
        b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
    }

    /// Re-slots `h` in the booked-ordered list after its `cpu_booked`
    /// moved from `old` to `new`.
    fn reposition_booked(&mut self, h: usize, old: f64, new: f64) {
        let pos = self
            .active_by_booked
            .binary_search_by(|e| Self::booked_order(e, &(old, h)))
            .expect("active host indexed under its old booked key");
        self.active_by_booked.remove(pos);
        let ins = self
            .active_by_booked
            .partition_point(|e| Self::booked_order(e, &(new, h)) == Ordering::Less);
        self.active_by_booked.insert(ins, (new, h));
    }

    /// Moves `h` between the per-state index sets on a state change.
    fn index_host(&mut self, h: usize, from: HState, to: HState, booked_old: f64, booked_new: f64) {
        let rack = self.hosts[h].rack as usize;
        match from {
            HState::Active => {
                self.active.remove(&h);
                let pos = self
                    .active_by_booked
                    .binary_search_by(|e| Self::booked_order(e, &(booked_old, h)))
                    .expect("active host indexed under its old booked key");
                self.active_by_booked.remove(pos);
            }
            HState::Zombie => {
                self.nonactive.remove(&h);
                self.zombies_by_rack[rack].remove(&h);
            }
            HState::Sleeping => {
                self.nonactive.remove(&h);
            }
        }
        match to {
            HState::Active => {
                self.active.insert(h);
                let ins = self
                    .active_by_booked
                    .partition_point(|e| Self::booked_order(e, &(booked_new, h)) == Ordering::Less);
                self.active_by_booked.insert(ins, (booked_new, h));
            }
            HState::Zombie => {
                self.nonactive.insert(h);
                self.zombies_by_rack[rack].insert(h);
            }
            HState::Sleeping => {
                self.nonactive.insert(h);
            }
        }
    }

    /// Snapshots every rack's free pool into [`Dc::pool_buf`] ahead of a
    /// placement scan. Under non-pool policies the snapshot is all zeros
    /// (never read). The scan itself does not mutate pool state, so one
    /// snapshot serves every candidate host — this is what turns the old
    /// O(hosts²) placement into O(active + zombies).
    fn snapshot_pools(&mut self) {
        let mut buf = std::mem::take(&mut self.pool_buf);
        buf.clear();
        let racks = self.cfg.racks;
        if self.cfg.policy.placement.uses_remote_pool() {
            buf.extend((0..racks).map(|r| self.pool_free(r)));
        } else {
            buf.resize(racks as usize, 0.0);
        }
        self.pool_buf = buf;
    }

    fn usable_mem(&self) -> f64 {
        self.cfg.usable_mem
    }

    /// Free remote-pool memory in one rack (zombie hosts only — the pool
    /// is rack-local as in the paper). Sums over the rack's zombie index
    /// set in ascending host order, the same order (and therefore the
    /// same float result) as the old full-fleet filter scan.
    fn pool_free(&self, rack: u32) -> f64 {
        self.zombies_by_rack[rack as usize]
            .iter()
            .map(|&i| (self.usable_mem() - self.hosts[i].remote_allocated).max(0.0))
            .sum()
    }

    /// Free pool across every rack (reporting / demotion policy).
    fn pool_free_total(&self) -> f64 {
        (0..self.cfg.racks).map(|r| self.pool_free(r)).sum()
    }

    /// Carves `amount` of remote memory from one rack's zombie hosts
    /// (most-free first). Returns how much was actually taken.
    fn take_remote(&mut self, rack: u32, mut amount: f64) -> f64 {
        let mut taken = 0.0;
        while amount > 1e-9 {
            // Most-free zombie; `>=` keeps the *last* maximum among ties,
            // matching the old full-scan `max_by`.
            let mut best: Option<(usize, f64)> = None;
            for &i in &self.zombies_by_rack[rack as usize] {
                let free = (self.usable_mem() - self.hosts[i].remote_allocated).max(0.0);
                if best.is_none_or(|(_, b)| free >= b) {
                    best = Some((i, free));
                }
            }
            let Some((idx, free)) = best else {
                break;
            };
            if free <= 1e-9 {
                break;
            }
            let take = free.min(amount);
            self.hosts[idx].remote_allocated += take;
            taken += take;
            amount -= take;
        }
        taken
    }

    /// Returns `amount` of remote memory to one rack's pool (drained from
    /// the most-loaded zombies first, so lightly-used zombies empty out
    /// and become demotable to S3).
    fn give_back_remote(&mut self, rack: u32, mut amount: f64) {
        while amount > 1e-9 {
            // Most-loaded zombie; `>=` keeps the last maximum among ties,
            // matching the old full-scan `max_by`.
            let mut best: Option<(usize, f64)> = None;
            for &i in &self.zombies_by_rack[rack as usize] {
                let ra = self.hosts[i].remote_allocated;
                if ra > 1e-9 && best.is_none_or(|(_, b)| ra >= b) {
                    best = Some((i, ra));
                }
            }
            let Some((idx, _)) = best else {
                break;
            };
            let back = self.hosts[idx].remote_allocated.min(amount);
            self.hosts[idx].remote_allocated -= back;
            amount -= back;
        }
    }

    /// The [`HostLoad`] view of `host` the policy traits judge.
    fn host_load(&self, host: usize) -> HostLoad {
        let h = &self.hosts[host];
        HostLoad {
            cpu_booked: h.cpu_booked,
            cpu_used: h.cpu_used,
            free_local: (self.usable_mem() - h.mem_local).max(0.0),
        }
    }

    /// Whether `host` can take the task under the policy's placement
    /// rule; returns the local share it would use. `pool` is the free
    /// remote pool of the host's rack (snapshot or fresh — the caller
    /// owns that choice; scans pass the per-scan snapshot).
    fn fits(&self, host: usize, cpu: f64, cpu_used: f64, mem: f64, pool: f64) -> Option<f64> {
        if self.hosts[host].state != HState::Active {
            return None;
        }
        self.cfg
            .policy
            .placement
            .admit(&self.host_load(host), cpu, cpu_used, mem, pool)
    }

    /// Stacking choice: the fittable active host with the highest booked
    /// CPU (ties to the lowest index, as the old ascending full scan
    /// resolved them). [`Dc::active_by_booked`] *is* that preference
    /// order, so the first fitting entry is the answer — no ranking pass.
    /// One pool snapshot serves the whole scan.
    fn pick_host(&mut self, cpu: f64, cpu_used: f64, mem: f64) -> Option<usize> {
        self.snapshot_pools();
        for &(_, i) in &self.active_by_booked {
            let pool = self.pool_buf[self.hosts[i].rack as usize];
            if self.fits(i, cpu, cpu_used, mem, pool).is_some() {
                return Some(i);
            }
        }
        None
    }

    /// Wakes a host per policy preference. Returns its index.
    fn wake_one(&mut self) -> Option<usize> {
        // Nested inside an Arrivals/Consolidation span; self-time
        // accounting moves these nanoseconds out of the caller's phase.
        let _span = zombieland_obs::profile::span(zombieland_obs::profile::Phase::WakeUps);
        let pick = match self.cfg.policy.placement.wake_preference() {
            WakePreference::IdleZombieFirst => {
                // Least-lending zombie; strict `<` keeps the *first*
                // minimum among ties, matching the old full-scan
                // `min_by` over ascending host indices.
                let mut best: Option<(usize, f64)> = None;
                for &i in &self.nonactive {
                    if self.hosts[i].state != HState::Zombie {
                        continue;
                    }
                    let ra = self.hosts[i].remote_allocated;
                    if best.is_none_or(|(_, b)| ra < b) {
                        best = Some((i, ra));
                    }
                }
                best.map(|(i, _)| i).or_else(|| self.find_sleeping())
            }
            WakePreference::FirstSleeping => self.find_sleeping(),
        }?;
        // A waking zombie reclaims its memory: re-place its allocations
        // on its rack's *other* zombies (so reactivate first — a zombie
        // would happily re-absorb its own shares), and shed whatever the
        // pool cannot hold onto the owning VMs' local backups, exactly as
        // the rack-level US_reclaim fallback does.
        let stranded = self.hosts[pick].remote_allocated;
        let rack = self.hosts[pick].rack;
        self.hosts[pick].remote_allocated = 0.0;
        self.cooldown[pick] = WAKE_COOLDOWN_TICKS;
        let waking_from = self.hosts[pick].state;
        self.update_host(pick, |h| {
            h.state = HState::Active;
        });
        self.charge_transition(waking_from, HState::Active);
        if stranded > 1e-9 {
            let placed = self.take_remote(rack, stranded);
            self.shed_vm_remote(rack, stranded - placed);
        }
        self.report.wakeups += 1;
        zombieland_obs::sink::counter_add("sim.wakeups", 1);
        zombieland_obs::trace_event!(self.last, "simulator", "wake", "host" => pick);
        Some(pick)
    }

    /// Reduces VMs' remote shares in `rack` by `amount`: their cold pages
    /// are now served from the local backups (the revocation fallback).
    fn shed_vm_remote(&mut self, rack: u32, mut amount: f64) {
        if amount <= 1e-9 {
            return;
        }
        for task in 0..self.vms.len() {
            if amount <= 1e-9 {
                break;
            }
            let Some(vm) = self.vms[task].as_mut() else {
                continue;
            };
            if vm.remote <= 1e-9 || self.hosts[vm.host].rack != rack {
                continue;
            }
            let cut = vm.remote.min(amount);
            vm.remote -= cut;
            amount -= cut;
        }
    }

    fn find_sleeping(&self) -> Option<usize> {
        // `nonactive` holds exactly the Sleeping|Zombie hosts, ordered by
        // index, so the first member is what the old `position` scan found.
        self.nonactive.first().copied()
    }

    pub(crate) fn arrive(&mut self, trace: &ClusterTrace, task: usize) {
        let t = &trace.tasks()[task];
        let (cpu, mem) = (t.cpu_booked, t.mem_booked);
        let host = match self.pick_host(cpu, t.cpu_used, mem) {
            Some(h) => h,
            None => {
                // Wake hosts until the VM fits; as a last resort,
                // overcommit the least-used active host (real clouds
                // queue or overcommit rather than reject booked work).
                let mut found = None;
                loop {
                    if self.wake_one().is_none() {
                        break;
                    }
                    if let Some(h) = self.pick_host(cpu, t.cpu_used, mem) {
                        found = Some(h);
                        break;
                    }
                }
                match found {
                    Some(h) => h,
                    None => {
                        // Least-used active host; strict `<` keeps the
                        // first minimum among ties like the old `min_by`
                        // over ascending indices.
                        let mut least: Option<(usize, f64)> = None;
                        for &i in &self.active {
                            let used = self.hosts[i].cpu_used;
                            if least.is_none_or(|(_, b)| used < b) {
                                least = Some((i, used));
                            }
                        }
                        let Some(h) = least.map(|(i, _)| i) else {
                            self.report.dropped += 1;
                            zombieland_obs::sink::counter_add("sim.dropped", 1);
                            zombieland_obs::trace_event!(
                                self.last, "simulator", "drop", "task" => task);
                            return;
                        };
                        self.report.overcommitted += 1;
                        zombieland_obs::sink::counter_add("sim.overcommitted", 1);
                        h
                    }
                }
            }
        };
        let pool = self.pool_free(self.hosts[host].rack);
        let local = match self.fits(host, cpu, t.cpu_used, mem, pool) {
            Some(l) => l,
            None => {
                // Overcommit fallback: take whatever local memory is left.
                let free = (self.usable_mem() - self.hosts[host].mem_local).max(0.0);
                mem.min(free)
            }
        };
        let remote = (mem - local).max(0.0);
        let rack = self.hosts[host].rack;
        let taken = if remote > 1e-9 {
            self.take_remote(rack, remote)
        } else {
            0.0
        };
        let used = t.cpu_used;
        self.update_host(host, |h| {
            h.cpu_booked += cpu;
            h.cpu_used += used;
            h.mem_local += local;
            h.vms.push(task);
        });
        self.vms[task] = Some(VmState {
            host,
            local_mem: local,
            remote: taken,
            parked: 0.0,
        });
        zombieland_obs::sink::counter_add("sim.arrivals", 1);
        zombieland_obs::trace_event!(self.last, "simulator", "arrive",
            "task" => task, "host" => host);
    }

    pub(crate) fn depart(&mut self, trace: &ClusterTrace, task: usize) {
        let Some(vm) = self.vms[task].take() else {
            return; // Dropped at arrival.
        };
        let t = &trace.tasks()[task];
        let (cpu, used, local) = (t.cpu_booked, t.cpu_used, vm.local_mem);
        self.update_host(vm.host, |h| {
            h.cpu_booked = (h.cpu_booked - cpu).max(0.0);
            h.cpu_used = (h.cpu_used - used).max(0.0);
            h.mem_local = (h.mem_local - local).max(0.0);
            h.vms.retain(|&v| v != task);
        });
        let rack = self.hosts[vm.host].rack;
        self.give_back_remote(rack, vm.remote);
        self.parked_mem = (self.parked_mem - vm.parked).max(0.0);
        zombieland_obs::sink::counter_add("sim.departures", 1);
        zombieland_obs::trace_event!(self.last, "simulator", "depart",
            "task" => task, "host" => vm.host);
    }

    /// Invariant sweep: VM lists, booked sums, pool accounting and the
    /// incremental index sets all agree. O(hosts × vms), so it runs only
    /// when [`validate_enabled`] says so (debug builds by default, the
    /// scenario `validate` switch opts release builds in).
    fn validate(&self) {
        let mut host_vms = 0usize;
        for (i, h) in self.hosts.iter().enumerate() {
            host_vms += h.vms.len();
            for &t in &h.vms {
                assert_eq!(
                    self.vms[t].as_ref().map(|v| v.host),
                    Some(i),
                    "vm {t} listed on host {i} but placed elsewhere"
                );
            }
            assert!(h.cpu_booked >= -1e-6 && h.mem_local >= -1e-6);
            if h.state != HState::Zombie {
                assert!(
                    h.remote_allocated <= 1e-6,
                    "non-zombie lends: host {i} {:?} holds {}",
                    h.state,
                    h.remote_allocated
                );
            }
            // The index sets mirror host state exactly.
            assert_eq!(
                self.active.contains(&i),
                h.state == HState::Active,
                "host {i}: active-set membership disagrees with {:?}",
                h.state
            );
            assert_eq!(
                self.nonactive.contains(&i),
                h.state != HState::Active,
                "host {i}: nonactive-set membership disagrees with {:?}",
                h.state
            );
            assert_eq!(
                self.zombies_by_rack[h.rack as usize].contains(&i),
                h.state == HState::Zombie,
                "host {i}: rack {} zombie-set membership disagrees with {:?}",
                h.rack,
                h.state
            );
        }
        assert_eq!(
            self.active_by_booked.len(),
            self.active.len(),
            "booked-ordered list covers exactly the active hosts"
        );
        for w in self.active_by_booked.windows(2) {
            assert_eq!(
                Self::booked_order(&w[0], &w[1]),
                Ordering::Less,
                "booked-ordered list stays strictly sorted"
            );
        }
        for &(booked, i) in &self.active_by_booked {
            assert_eq!(
                booked.to_bits(),
                self.hosts[i].cpu_booked.to_bits(),
                "host {i}: indexed booked key matches the live value"
            );
        }
        let indexed: usize = self.zombies_by_rack.iter().map(|s| s.len()).sum();
        let zombies = self
            .hosts
            .iter()
            .filter(|h| h.state == HState::Zombie)
            .count();
        assert_eq!(indexed, zombies, "zombie index covers every zombie once");
        let live = self.vms.iter().filter(|v| v.is_some()).count();
        assert_eq!(host_vms, live, "every live VM is on exactly one host");
        let vm_remote: f64 = self.vms.iter().flatten().map(|v| v.remote).sum();
        let host_remote: f64 = self.hosts.iter().map(|h| h.remote_allocated).sum();
        assert!(
            (vm_remote - host_remote).abs() < 1e-3,
            "pool accounting: vms {vm_remote} vs hosts {host_remote}"
        );
    }

    /// One consolidation round.
    pub(crate) fn consolidate(&mut self, trace: &ClusterTrace) {
        let policy = self.cfg.policy.consolidation;
        // Oasis first parks idle VMs' cold memory, shrinking footprints.
        if policy.parks_idle_memory() {
            self.oasis_park(trace);
        }

        for c in &mut self.cooldown {
            *c = c.saturating_sub(1);
        }
        // Underloaded hosts, least loaded first. The candidate list comes
        // from the active index set (ascending, as the old full scan
        // iterated) and lives in a persistent buffer so consolidation
        // ticks stop allocating.
        let underload = policy.underload_threshold();
        let mut order = std::mem::take(&mut self.order_buf);
        order.clear();
        order.extend(
            self.active
                .iter()
                .copied()
                .filter(|&i| self.cooldown[i] == 0 && self.hosts[i].cpu_used < underload),
        );
        // The comparator is a total order (index tie-break), so the
        // unstable sort is deterministic.
        order.sort_unstable_by(|&a, &b| {
            self.hosts[a]
                .cpu_used
                .total_cmp(&self.hosts[b].cpu_used)
                .then(a.cmp(&b))
        });

        for &host in &order {
            self.try_evacuate(trace, host);
        }
        self.order_buf = order;

        if self.validate_on {
            self.validate();
        }

        // §4.4: "If the global-mem-ctr holds huge amounts of free memory
        // (e.g. more than the total memory of a rack server), the cloud
        // manager may decide to transition zombie servers to S3." Only
        // zombies serving nothing are demoted (give_back_remote drains
        // the least-loaded ones toward zero), and generous headroom stays
        // in the pool so placements do not start waking zombies.
        if let Some(threshold) = self.cfg.sz_demote_threshold {
            while self.cfg.policy.consolidation.demotes_idle_zombies() {
                // First (lowest-index) idle zombie, as the old full-fleet
                // `position` scan found it.
                let candidate = self.nonactive.iter().copied().find(|&i| {
                    self.hosts[i].state == HState::Zombie && self.hosts[i].remote_allocated <= 1e-9
                });
                match candidate {
                    Some(i)
                        if self.pool_free_total() - self.usable_mem()
                            >= threshold + self.usable_mem() =>
                    {
                        self.update_host(i, |h| h.state = HState::Sleeping);
                    }
                    _ => break,
                }
            }
        }
    }

    /// Tries to move every VM off `host`; on success the host suspends
    /// (Sz for zombie-evacuating policies, S3 otherwise).
    ///
    /// Under ZombieStack the host flips into Sz *before* the moves are
    /// planned, so its own memory backs the departing VMs' remote shares
    /// — without this, a memory-bound fleet can never bootstrap the
    /// remote pool (every evacuation would need a pool that only
    /// evacuations can create).
    fn try_evacuate(&mut self, trace: &ClusterTrace, host: usize) {
        let policy = self.cfg.policy.consolidation;
        let zombie_mode = policy.evacuates_to_zombie();
        if zombie_mode {
            self.update_host(host, |h| h.state = HState::Zombie);
        }
        // Resident VM ids go through a persistent buffer instead of a
        // fresh clone per evacuation attempt.
        let mut resident = std::mem::take(&mut self.evac_buf);
        resident.clear();
        resident.extend_from_slice(&self.hosts[host].vms);
        let mut moves: Vec<PendingMove> = Vec::with_capacity(resident.len());
        let mut ok = true;
        for &task in &resident {
            let t = &trace.tasks()[task];
            let mem = policy
                .migration_footprint(t.mem_booked, self.vms[task].as_ref().map(|v| v.local_mem));
            // Highest-booked fittable target, ties to the lowest index —
            // the old `max_by(...).then(b.cmp(&a))` full scan. The
            // booked-ordered walk stops at the first fitting entry; pools
            // are re-snapshot per VM because each reserve_move shifts
            // them.
            self.snapshot_pools();
            let migrant = crate::policy::MigrantVm {
                cpu_booked: t.cpu_booked,
                cpu_used: t.cpu_used,
                mem,
                wss: t.mem_used,
            };
            let mut target = None;
            for &(_, i) in &self.active_by_booked {
                if i == host {
                    continue;
                }
                let pool = self.pool_buf[self.hosts[i].rack as usize];
                if self.consolidation_fits(i, &migrant, pool) {
                    target = Some(i);
                    break;
                }
            }
            match target {
                Some(tgt) => moves.push(self.reserve_move(trace, task, tgt)),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        self.evac_buf = resident;
        if !ok {
            // Roll back reservations; the host stays up (the aborted
            // transition never left the OS, so no energy is charged).
            for m in moves.into_iter().rev() {
                self.rollback_move(trace, m);
            }
            if zombie_mode {
                // Planning may have parked pool shares on this host (it
                // was briefly a zombie) and the give-backs may have
                // drained its peers instead. Reactivate first, then
                // migrate any residue to the peers; whatever cannot fit
                // sheds to the owning VMs' local backups.
                let stuck = self.hosts[host].remote_allocated;
                let rack = self.hosts[host].rack;
                self.hosts[host].remote_allocated = 0.0;
                self.update_host(host, |h| h.state = HState::Active);
                if stuck > 1e-9 {
                    let moved = self.take_remote(rack, stuck);
                    self.shed_vm_remote(rack, stuck - moved);
                }
            }
            return;
        }
        // Commit: detach every VM from the source.
        for m in &moves {
            let t = &trace.tasks()[m.task];
            let (cpu, used, old_local) = (t.cpu_booked, t.cpu_used, m.old_local);
            self.update_host(host, |h| {
                h.cpu_booked = (h.cpu_booked - cpu).max(0.0);
                h.cpu_used = (h.cpu_used - used).max(0.0);
                h.mem_local = (h.mem_local - old_local).max(0.0);
                h.vms.retain(|&v| v != m.task);
            });
            self.report.migrations += 1;
        }
        zombieland_obs::sink::counter_add("sim.migrations", moves.len() as u64);
        zombieland_obs::trace_event!(self.last, "simulator", "evacuate",
            "host" => host, "moves" => moves.len(),
            "to_zombie" => zombie_mode);
        if !zombie_mode {
            self.update_host(host, |h| {
                debug_assert!(h.vms.is_empty());
                h.state = HState::Sleeping;
            });
        }
        self.charge_transition(HState::Active, HState::Sleeping);
    }

    /// Books a pending move on the target host (two-phase evacuate). The
    /// source host is *not* touched yet; commit or rollback settles it.
    fn reserve_move(&mut self, trace: &ClusterTrace, task: usize, target: usize) -> PendingMove {
        let t = &trace.tasks()[task];
        let free_local = (self.usable_mem() - self.hosts[target].mem_local).max(0.0);
        let vm = self.vms[task].as_mut().expect("placed");
        let (old_local, old_remote, source) = (vm.local_mem, vm.remote, vm.host);
        let mem = t.mem_booked - vm.parked;
        let new_local = mem.min(free_local);
        vm.local_mem = new_local;
        vm.host = target;
        let (cpu, used) = (t.cpu_booked, t.cpu_used);
        self.update_host(target, |h| {
            h.cpu_booked += cpu;
            h.cpu_used += used;
            h.mem_local += new_local;
            h.vms.push(task);
        });
        // Remote shares are rack-local: return the source rack's shares
        // and take the whole new requirement from the target's rack.
        let source_rack = self.hosts[source].rack;
        let target_rack = self.hosts[target].rack;
        if old_remote > 1e-9 {
            self.give_back_remote(source_rack, old_remote);
        }
        let need = (mem - new_local).max(0.0);
        let taken = if need > 1e-9 {
            self.take_remote(target_rack, need)
        } else {
            0.0
        };
        self.vms[task].as_mut().expect("placed").remote = taken;
        PendingMove {
            task,
            source,
            target,
            old_local,
            old_remote,
            new_local,
            taken,
        }
    }

    /// Undoes a reservation.
    fn rollback_move(&mut self, trace: &ClusterTrace, m: PendingMove) {
        let t = &trace.tasks()[m.task];
        let (cpu, used, new_local) = (t.cpu_booked, t.cpu_used, m.new_local);
        self.update_host(m.target, |h| {
            h.cpu_booked = (h.cpu_booked - cpu).max(0.0);
            h.cpu_used = (h.cpu_used - used).max(0.0);
            h.mem_local = (h.mem_local - new_local).max(0.0);
            h.vms.retain(|&v| v != m.task);
        });
        if m.taken > 1e-9 {
            let rack = self.hosts[m.target].rack;
            self.give_back_remote(rack, m.taken);
        }
        // Best effort: re-take the old shares in the source rack (the
        // pool may have shifted; any shortfall surfaces as pool pressure
        // on the next placement check, never as lost accounting).
        let source_rack = self.hosts[m.source].rack;
        let retaken = if m.old_remote > 1e-9 {
            self.take_remote(source_rack, m.old_remote)
        } else {
            0.0
        };
        let vm = self.vms[m.task].as_mut().expect("placed");
        vm.host = m.source;
        vm.local_mem = m.old_local;
        vm.remote = retaken;
    }

    /// The migration feasibility check, judged by the policy. Vanilla
    /// Neat "places a VM on a server only if the latter holds all the
    /// resources booked by the VM"; ZombieStack replaces that with the
    /// 30 %-of-WSS rule and packs by *actual* CPU usage (overload
    /// detection guards the overcommit), which is where most of its
    /// extra consolidation comes from.
    fn consolidation_fits(&self, target: usize, vm: &crate::policy::MigrantVm, pool: f64) -> bool {
        if self.hosts[target].state != HState::Active {
            return false;
        }
        self.cfg.policy.consolidation.accepts_migration(
            &self.host_load(target),
            vm,
            pool,
            self.cfg.cpu_fill_cap,
        )
    }

    /// Oasis: park the cold memory of idle VMs on underused hosts.
    fn oasis_park(&mut self, trace: &ClusterTrace) {
        for host in 0..self.hosts.len() {
            if self.hosts[host].state != HState::Active
                || self.hosts[host].cpu_used >= self.oasis.underload_threshold
            {
                continue;
            }
            // Index-walk the VM list in place: parking never edits
            // `vms`, so no defensive clone is needed.
            for vi in 0..self.hosts[host].vms.len() {
                let task = self.hosts[host].vms[vi];
                let t = &trace.tasks()[task];
                if t.cpu_used >= self.oasis.idle_vm_threshold {
                    continue;
                }
                let vm = self.vms[task].as_mut().expect("placed");
                if vm.parked > 0.0 {
                    continue; // Already parked.
                }
                // Partial migration: the footprint shrinks to the working
                // set; the rest parks on memory servers.
                let park = (vm.local_mem - t.mem_used).max(0.0);
                if park <= 1e-9 {
                    continue;
                }
                vm.parked = park;
                vm.local_mem -= park;
                self.parked_mem += park;
                self.report.peak_parked = self.report.peak_parked.max(self.parked_mem);
                self.update_host(host, |h| {
                    h.mem_local = (h.mem_local - park).max(0.0);
                });
            }
        }
    }
}
