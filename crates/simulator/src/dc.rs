//! Datacenter state: hosts, VMs, the rack-local remote pool, and the
//! sharded index sets that keep the hot paths from scanning the full
//! fleet.
//!
//! Everything here is *mechanism* — admission checks, the two-phase
//! evacuation protocol, pool carving, invariant validation. Every
//! policy *decision* routes through the [`crate::policy`] trait objects
//! carried by [`crate::SimConfig::policy`], so this module never
//! matches on a policy name.
//!
//! # Sharding and determinism (DESIGN §12)
//!
//! Host state lives in a struct-of-arrays [`Hosts`] table, and the
//! index sets are partitioned into per-rack-group [`Shard`]s (rack `r`
//! → shard `r % shards`). The event loop itself stays serial — every
//! float mutation happens on the coordinator in the exact order the
//! unsharded loop used, which is what keeps reports byte-identical at
//! any shard count. What decomposes is the read-only *decision scan*
//! ([`ScanReq`]): each shard answers with its best candidate under a
//! total-order merge key, and the coordinator takes the tuple minimum —
//! constructed to equal the serial full-scan answer exactly. Above
//! [`crate::crew::CREW_MIN_FLEET`] hosts (and given a thread budget),
//! the per-shard scans run on a worker [`Crew`] between rounds.

use core::cmp::Ordering;
use std::collections::BTreeSet;

use zombieland_cloud::oasis::OasisConfig;
use zombieland_energy::PowerModel;
use zombieland_simcore::{derive_seed, Joules, SimTime, Watts};
use zombieland_trace::google::ClusterTrace;

use crate::crew::{merge_hit, Crew, ScanHit, ScanReq, CREW_MIN_FLEET};
use crate::policy::{HostLoad, WakePreference};
use crate::report::SimReport;
use crate::SimConfig;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum HState {
    Active,
    Zombie,
    Sleeping,
}

pub(crate) fn state_index(s: HState) -> usize {
    match s {
        HState::Active => 0,
        HState::Zombie => 1,
        HState::Sleeping => 2,
    }
}

/// Host state in struct-of-arrays layout: the hot fields (state, booked,
/// used, power-relevant numbers) are dense parallel `Vec`s, so placement
/// and consolidation scans touch only the arrays they read instead of
/// dragging whole `Host` structs through the cache.
#[derive(Debug, Default)]
pub(crate) struct Hosts {
    pub(crate) state: Vec<HState>,
    pub(crate) rack: Vec<u32>,
    pub(crate) cpu_booked: Vec<f64>,
    pub(crate) cpu_used: Vec<f64>,
    pub(crate) mem_local: Vec<f64>,
    /// Remote-pool memory allocated *from* each host (only when zombie).
    pub(crate) remote_allocated: Vec<f64>,
    /// Resident VM (task) ids per host.
    pub(crate) vms: Vec<Vec<usize>>,
    /// Usable memory of each host in server-equivalents: the config's
    /// `usable_mem` scaled by the host generation's socket capacity.
    /// Uniform fleets store the config value bit-for-bit, so every
    /// `cap[i]` read reproduces the old global-constant math exactly.
    pub(crate) cap: Vec<f64>,
    /// Model year of each host's generation (`0` = uniform fleet of the
    /// profile's reference machine).
    pub(crate) generation: Vec<u16>,
    /// Power model pricing each host — per-generation in heterogeneous
    /// fleets, the config model (one shared pointer) otherwise.
    pub(crate) power: Vec<&'static dyn PowerModel>,
}

impl Hosts {
    pub(crate) fn len(&self) -> usize {
        self.state.len()
    }

    /// A mutable view of one host's policy-visible fields, for
    /// [`Dc::update_host`] closures. `rack` is immutable for a host's
    /// lifetime and `remote_allocated` is pool bookkeeping (mutated
    /// directly by the pool carving paths), so neither is exposed here.
    fn view_mut(&mut self, i: usize) -> HostMut<'_> {
        HostMut {
            state: &mut self.state[i],
            cpu_booked: &mut self.cpu_booked[i],
            cpu_used: &mut self.cpu_used[i],
            mem_local: &mut self.mem_local[i],
            vms: &mut self.vms[i],
        }
    }
}

/// Mutable view of one host (see [`Hosts::view_mut`]).
pub(crate) struct HostMut<'a> {
    pub(crate) state: &'a mut HState,
    pub(crate) cpu_booked: &'a mut f64,
    pub(crate) cpu_used: &'a mut f64,
    pub(crate) mem_local: &'a mut f64,
    pub(crate) vms: &'a mut Vec<usize>,
}

#[derive(Clone, Debug)]
pub(crate) struct VmState {
    pub(crate) host: usize,
    pub(crate) local_mem: f64,
    /// Remote-pool memory this VM holds (server-equivalents).
    pub(crate) remote: f64,
    pub(crate) parked: f64,
}

/// Ticks a freshly woken host is exempt from consolidation, damping
/// wake/suspend churn.
const WAKE_COOLDOWN_TICKS: u32 = 3;

/// Seed base for the per-rack generation assignment (an arbitrary
/// constant: changing it reshuffles every heterogeneous fleet).
const GENERATION_SEED: u64 = 0x4745_4E53_2D30_3130; // "GENS-010"

/// GiB per socket of the reference machine the memory unit (1.0 = one
/// server's RAM) is calibrated to — the paper testbed's 16 GiB servers.
const REFERENCE_GIB_PER_SOCKET: f64 = 16.0;

/// Bookkeeping for one in-flight (two-phase) consolidation move.
#[derive(Clone, Copy, Debug)]
struct PendingMove {
    task: usize,
    source: usize,
    target: usize,
    old_local: f64,
    old_remote: f64,
    new_local: f64,
    taken: f64,
}

/// Monotone `u64` image of `f64` under `total_cmp` order:
/// `total_key(a) < total_key(b)` iff `a.total_cmp(&b) == Less`.
fn total_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Key for [`Shard::by_booked`]: ascending key order walks hosts
/// most-booked first with ties toward the lower index — the stacking
/// preference order the serial `active_by_booked` list used.
fn booked_key(v: f64) -> u64 {
    !total_key(v)
}

/// Merge key for minimum-value scans (wake picks, the overcommit
/// fallback). The serial scans compared with plain `<`, under which
/// `-0.0` and `+0.0` tie and the first (lowest-index) host wins;
/// canonicalizing the zero sign makes the `(key, index)` tuple minimum
/// reproduce that tie-break exactly. (These fields never actually go
/// negative-zero — subtraction of finite equals yields `+0.0` and every
/// clamp is `.max(0.0)` — so this is belt-and-braces.)
fn merge_key(v: f64) -> u64 {
    total_key(if v == 0.0 { 0.0 } else { v })
}

/// One shard's index sets: the hosts of racks `r ≡ shard (mod shards)`,
/// maintained by [`Dc::update_host`]. Iteration order within a shard is
/// ascending (host index, or booked key), so a per-shard scan merged by
/// key tuple equals the serial full scan.
#[derive(Clone, Debug, Default)]
pub(crate) struct Shard {
    /// Active hosts, ascending index.
    active: BTreeSet<usize>,
    /// Active hosts keyed by `(booked_key(cpu_booked), index)` — the
    /// stacking preference order. The key is built from the host's
    /// exact stored bits at index time; `update_host` repositions
    /// entries whenever the value changes.
    by_booked: BTreeSet<(u64, usize)>,
    /// Sleeping and zombie hosts (the wake candidates), ascending index.
    nonactive: BTreeSet<usize>,
}

pub(crate) struct Dc {
    pub(crate) cfg: SimConfig,
    pub(crate) hosts: Hosts,
    /// Consolidation-round counter; a freshly woken host is exempt until
    /// `round >= cooldown_expiry[h]`. Replaces the old per-round
    /// decrement sweep over every host with one counter increment.
    pub(crate) round: u64,
    /// First consolidation round at which each host is eligible again
    /// (see [`Dc::round`]; `0` = no cooldown).
    pub(crate) cooldown_expiry: Vec<u64>,
    pub(crate) vms: Vec<Option<VmState>>,
    pub(crate) parked_mem: f64,
    pub(crate) total_power: Watts,
    pub(crate) state_counts: [u64; 3],
    pub(crate) energy: Joules,
    pub(crate) last: SimTime,
    pub(crate) report: SimReport,
    pub(crate) oasis: OasisConfig,
    /// Per-shard index sets (see [`Shard`]); `shards.len()` is the
    /// effective shard count, `cfg.shards` clamped to the rack count.
    pub(crate) shards: Vec<Shard>,
    /// Zombie hosts per rack (the rack-local remote pool's lenders).
    /// Pool carving is serial coordinator work, so this index stays
    /// global per rack rather than per shard.
    pub(crate) zombies_by_rack: Vec<BTreeSet<usize>>,
    /// Tasks holding remote-pool memory, per rack of their host.
    /// Invariant: task ∈ set[r] iff its VM exists, holds `remote >
    /// 1e-9`, and lives on a host of rack `r`. Turns the revocation
    /// fallback ([`Dc::shed_vm_remote`]) from an all-tasks sweep into a
    /// walk over actual holders — in the same ascending-task order.
    remote_vms_by_rack: Vec<BTreeSet<usize>>,
    /// Pooled-tier memory allocated per rack when the backend does not
    /// pool host memory (CXL-style shared tier); all zeros otherwise.
    pub(crate) cxl_allocated: Vec<f64>,
    /// Sum of [`Dc::cxl_allocated`], maintained incrementally for the
    /// energy integration and the STATS overlay.
    pub(crate) cxl_allocated_total: f64,
    /// Active hosts keyed by `(merge_key(cpu_used), index)` — the
    /// consolidation candidate order. Ascending walk with early exit at
    /// the underload threshold replaces the old full active-set gather +
    /// sort per round. Membership follows state changes eagerly
    /// ([`Dc::index_host`]); *key* updates for load changes are deferred
    /// to the dirty-host drain at the top of each round, so the busy
    /// arrive/depart path pays one flag write instead of two B-tree
    /// edits.
    by_used: BTreeSet<(u64, usize)>,
    /// The key each host is currently indexed under in [`Dc::by_used`]
    /// (exact stored bits; only meaningful while the host is active).
    used_key: Vec<u64>,
    /// Hosts whose `cpu_used` changed since the last drain (deduplicated
    /// by [`Dc::used_dirty_flag`]).
    used_dirty: Vec<usize>,
    /// Membership flags for [`Dc::used_dirty`].
    used_dirty_flag: Vec<bool>,
    /// Persistent sort buffer for the consolidation order (reused every
    /// tick instead of a fresh allocation).
    order_buf: Vec<usize>,
    /// Persistent buffer for the resident-VM snapshot in
    /// [`Dc::try_evacuate`].
    evac_buf: Vec<usize>,
    /// Per-rack free-pool snapshot taken at the start of each placement
    /// scan, so `fits` stops re-summing the pool per candidate host.
    pool_buf: Vec<f64>,
    /// Persistent buffer for the remote-holder walk in
    /// [`Dc::shed_vm_remote`].
    shed_buf: Vec<usize>,
    /// Worker threads for per-shard scans; `None` below the crew gate
    /// (small fleet, single shard, or no thread budget).
    crew: Option<Crew>,
    /// Whether [`Dc::validate`] runs after each consolidation round:
    /// debug builds by default, or the scenario's `validate` switch
    /// (`ZL_VALIDATE=1`) in release.
    pub(crate) validate_on: bool,
}

/// Whether the O(hosts × vms) invariant sweep runs: always in debug
/// builds (unless `ZL_VALIDATE=0`), and only on `ZL_VALIDATE=1` in
/// release — release runs skip the sweep entirely. The switch is the
/// scenario layer's `validate` field, so env and `--scenario` files
/// agree on one spelling.
fn validate_enabled() -> bool {
    zombieland_core::scenario::current()
        .validate
        .unwrap_or(cfg!(debug_assertions))
}

impl Dc {
    /// Builds the all-active initial fleet for `trace` under `cfg`.
    ///
    /// `cfg` must have passed [`SimConfig::validate`]; in particular
    /// `racks >= 1` and `shards >= 1`, so the rack/shard assignment
    /// below never divides by zero.
    pub(crate) fn new(trace: &ClusterTrace, cfg: &SimConfig) -> Dc {
        let n = trace.config().servers as usize;
        let nshards = (cfg.shards.min(cfg.racks).max(1)) as usize;
        let mut shards = vec![Shard::default(); nshards];
        let mut rack = Vec::with_capacity(n);
        let mut by_used = BTreeSet::new();
        let mut cap = Vec::with_capacity(n);
        let mut generation = Vec::with_capacity(n);
        let mut power: Vec<&'static dyn PowerModel> = Vec::with_capacity(n);
        for i in 0..n {
            let r = i as u32 % cfg.racks;
            rack.push(r);
            if cfg.generations.is_empty() {
                cap.push(cfg.usable_mem);
                generation.push(0);
                power.push(cfg.power);
            } else {
                // Seeded per-rack assignment: a pure function of (rack,
                // host), so the mix is identical at any shards × jobs.
                let pick = derive_seed(GENERATION_SEED ^ r as u64, i as u64) as usize
                    % cfg.generations.len();
                let year = cfg.generations[pick];
                let g = zombieland_trace::generations::by_year(year)
                    .expect("SimConfig::validate checked the generation years");
                cap.push(cfg.usable_mem * (g.gib_per_socket() as f64 / REFERENCE_GIB_PER_SOCKET));
                generation.push(year);
                power.push(
                    zombieland_energy::generation_power(year)
                        .expect("the energy crate models every table generation"),
                );
            }
            let shard = &mut shards[r as usize % nshards];
            shard.active.insert(i);
            shard.by_booked.insert((booked_key(0.0), i));
            by_used.insert((merge_key(0.0), i));
        }
        // The crew only pays off when a scan has real work per shard;
        // below the gate (or without a thread budget) scans run inline.
        // Either way the answers are identical — see `crate::crew`.
        let crew = if nshards > 1 && n >= CREW_MIN_FLEET {
            Crew::spawn(nshards, zombieland_simcore::thread_budget())
        } else {
            None
        };
        let mut dc = Dc {
            hosts: Hosts {
                state: vec![HState::Active; n],
                rack,
                cpu_booked: vec![0.0; n],
                cpu_used: vec![0.0; n],
                mem_local: vec![0.0; n],
                remote_allocated: vec![0.0; n],
                vms: vec![Vec::new(); n],
                cap,
                generation,
                power,
            },
            round: 0,
            cooldown_expiry: vec![0; n],
            vms: vec![None; trace.tasks().len()],
            parked_mem: 0.0,
            total_power: Watts::ZERO,
            energy: Joules::ZERO,
            last: SimTime::ZERO,
            report: SimReport {
                policy: cfg.policy.label,
                energy: Joules::ZERO,
                migrations: 0,
                wakeups: 0,
                dropped: 0,
                overcommitted: 0,
                state_seconds: [0.0; 3],
                peak_parked: 0.0,
                events: 0,
                peak_queue: 0,
                timeline: Vec::new(),
            },
            oasis: OasisConfig::default(),
            shards,
            zombies_by_rack: vec![BTreeSet::new(); cfg.racks as usize],
            remote_vms_by_rack: vec![BTreeSet::new(); cfg.racks as usize],
            cxl_allocated: vec![0.0; cfg.racks as usize],
            cxl_allocated_total: 0.0,
            by_used,
            used_key: vec![merge_key(0.0); n],
            used_dirty: Vec::new(),
            used_dirty_flag: vec![false; n],
            order_buf: Vec::new(),
            evac_buf: Vec::new(),
            pool_buf: Vec::new(),
            shed_buf: Vec::new(),
            crew,
            validate_on: validate_enabled(),
            cfg: cfg.clone(),
            state_counts: [n as u64, 0, 0],
        };
        // Initial fleet power: everything on and idle. An empty fleet
        // has no host 0 to sample (and draws nothing). The uniform-fleet
        // branch keeps the historical one-sample-times-n float expression
        // bit-for-bit; heterogeneous fleets sum per host.
        if n > 0 {
            if cfg.generations.is_empty() {
                dc.total_power = dc.host_power(0) * n as f64;
            } else {
                let mut total = Watts::ZERO;
                for i in 0..n {
                    total += dc.host_power(i);
                }
                dc.total_power = total;
            }
        }
        dc
    }

    /// Whether the backend pools suspended hosts' memory (the zombie
    /// design). `false` routes pool carving to the shared CXL-style tier
    /// ([`Dc::cxl_allocated`]) instead of zombie lenders.
    fn pools_host_memory(&self) -> bool {
        self.cfg.backend.backend.pools_host_memory()
    }

    /// The effective shard count.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning host `h` (rack-based, so a rack's hosts — and
    /// its pool lenders — always share a shard).
    fn shard_of(&self, h: usize) -> usize {
        self.hosts.rack[h] as usize % self.shards.len()
    }

    /// Applies a mutation to host `h`, keeping the fleet power total,
    /// the state counts and the shard index sets consistent.
    pub(crate) fn update_host(&mut self, h: usize, f: impl FnOnce(HostMut)) {
        let before = self.host_power(h);
        let state_before = self.hosts.state[h];
        let booked_before = self.hosts.cpu_booked[h];
        let used_before = self.hosts.cpu_used[h];
        f(self.hosts.view_mut(h));
        let after = self.host_power(h);
        let state_after = self.hosts.state[h];
        let booked_after = self.hosts.cpu_booked[h];
        if state_before != state_after {
            self.state_counts[state_index(state_before)] -= 1;
            self.state_counts[state_index(state_after)] += 1;
            self.index_host(h, state_before, state_after, booked_before, booked_after);
        } else if state_after == HState::Active {
            if booked_after.total_cmp(&booked_before) != Ordering::Equal {
                // total_cmp (not `!=`) so a -0.0/+0.0 flip still repositions
                // and the stored key always matches the host's exact bits.
                let s = self.shard_of(h);
                let shard = &mut self.shards[s];
                let removed = shard.by_booked.remove(&(booked_key(booked_before), h));
                debug_assert!(removed, "active host indexed under its old booked key");
                shard.by_booked.insert((booked_key(booked_after), h));
            }
            if self.hosts.cpu_used[h].total_cmp(&used_before) != Ordering::Equal
                && !self.used_dirty_flag[h]
            {
                // Lazy: the ordered `by_used` key is repositioned at the
                // next consolidation round, not on every arrive/depart.
                self.used_dirty_flag[h] = true;
                self.used_dirty.push(h);
            }
        }
        self.total_power =
            Watts::new((self.total_power.get() - before.get() + after.get()).max(0.0));
    }

    /// Moves `h` between its shard's index sets on a state change.
    fn index_host(&mut self, h: usize, from: HState, to: HState, booked_old: f64, booked_new: f64) {
        let rack = self.hosts.rack[h] as usize;
        let s = self.shard_of(h);
        let shard = &mut self.shards[s];
        match from {
            HState::Active => {
                shard.active.remove(&h);
                let removed = shard.by_booked.remove(&(booked_key(booked_old), h));
                debug_assert!(removed, "active host indexed under its old booked key");
                // Membership is eager even though key *values* are lazy:
                // the stored key is whatever `used_key` last recorded.
                let removed = self.by_used.remove(&(self.used_key[h], h));
                debug_assert!(removed, "active host indexed under its stored used key");
            }
            HState::Zombie => {
                shard.nonactive.remove(&h);
                self.zombies_by_rack[rack].remove(&h);
            }
            HState::Sleeping => {
                shard.nonactive.remove(&h);
            }
        }
        let shard = &mut self.shards[s];
        match to {
            HState::Active => {
                shard.active.insert(h);
                shard.by_booked.insert((booked_key(booked_new), h));
                // Re-sync the used key eagerly on (re)activation so the
                // entry is live even if no further load change follows.
                let key = merge_key(self.hosts.cpu_used[h]);
                self.by_used.insert((key, h));
                self.used_key[h] = key;
            }
            HState::Zombie => {
                shard.nonactive.insert(h);
                self.zombies_by_rack[rack].insert(h);
            }
            HState::Sleeping => {
                shard.nonactive.insert(h);
            }
        }
    }

    /// Snapshots every rack's free pool into [`Dc::pool_buf`] ahead of a
    /// placement scan. Under non-pool policies the snapshot is all zeros
    /// (never read). The scan itself does not mutate pool state, so one
    /// snapshot serves every candidate host — this is what turns the old
    /// O(hosts²) placement into O(active + zombies).
    fn snapshot_pools(&mut self) {
        let mut buf = std::mem::take(&mut self.pool_buf);
        buf.clear();
        let racks = self.cfg.racks;
        if self.cfg.policy.placement.uses_remote_pool() {
            buf.extend((0..racks).map(|r| self.pool_free(r)));
        } else {
            buf.resize(racks as usize, 0.0);
        }
        self.pool_buf = buf;
    }

    fn usable_mem(&self) -> f64 {
        self.cfg.usable_mem
    }

    /// Free remote-pool memory in one rack. Under the zombie backend the
    /// pool is the rack's zombie hosts (rack-local, as in the paper):
    /// the sum runs over the zombie index set in ascending host order,
    /// the same order (and therefore the same float result) as the old
    /// full-fleet filter scan. Under a shared-tier backend it is the
    /// rack's remaining CXL capacity.
    fn pool_free(&self, rack: u32) -> f64 {
        if !self.pools_host_memory() {
            return (self.cfg.cxl_capacity - self.cxl_allocated[rack as usize]).max(0.0);
        }
        self.zombies_by_rack[rack as usize]
            .iter()
            .map(|&i| (self.hosts.cap[i] - self.hosts.remote_allocated[i]).max(0.0))
            .sum()
    }

    /// Free pool across every rack (reporting / demotion policy).
    fn pool_free_total(&self) -> f64 {
        (0..self.cfg.racks).map(|r| self.pool_free(r)).sum()
    }

    /// Carves `amount` of remote memory from one rack's pool: the shared
    /// tier's free capacity under a CXL-style backend, the rack's zombie
    /// hosts (most-free first) otherwise. Returns how much was taken.
    fn take_remote(&mut self, rack: u32, mut amount: f64) -> f64 {
        if !self.pools_host_memory() {
            let free = (self.cfg.cxl_capacity - self.cxl_allocated[rack as usize]).max(0.0);
            let take = free.min(amount);
            if take <= 1e-9 {
                return 0.0;
            }
            self.cxl_allocated[rack as usize] += take;
            self.cxl_allocated_total += take;
            return take;
        }
        let mut taken = 0.0;
        while amount > 1e-9 {
            // Most-free zombie; `>=` keeps the *last* maximum among ties,
            // matching the old full-scan `max_by`.
            let mut best: Option<(usize, f64)> = None;
            for &i in &self.zombies_by_rack[rack as usize] {
                let free = (self.hosts.cap[i] - self.hosts.remote_allocated[i]).max(0.0);
                if best.is_none_or(|(_, b)| free >= b) {
                    best = Some((i, free));
                }
            }
            let Some((idx, free)) = best else {
                break;
            };
            if free <= 1e-9 {
                break;
            }
            let take = free.min(amount);
            self.hosts.remote_allocated[idx] += take;
            taken += take;
            amount -= take;
        }
        taken
    }

    /// Returns `amount` of remote memory to one rack's pool (drained from
    /// the most-loaded zombies first, so lightly-used zombies empty out
    /// and become demotable to S3; the shared tier just decrements).
    fn give_back_remote(&mut self, rack: u32, mut amount: f64) {
        if !self.pools_host_memory() {
            let back = self.cxl_allocated[rack as usize].min(amount).max(0.0);
            self.cxl_allocated[rack as usize] -= back;
            self.cxl_allocated_total = (self.cxl_allocated_total - back).max(0.0);
            return;
        }
        while amount > 1e-9 {
            // Most-loaded zombie; `>=` keeps the last maximum among ties,
            // matching the old full-scan `max_by`.
            let mut best: Option<(usize, f64)> = None;
            for &i in &self.zombies_by_rack[rack as usize] {
                let ra = self.hosts.remote_allocated[i];
                if ra > 1e-9 && best.is_none_or(|(_, b)| ra >= b) {
                    best = Some((i, ra));
                }
            }
            let Some((idx, _)) = best else {
                break;
            };
            let back = self.hosts.remote_allocated[idx].min(amount);
            self.hosts.remote_allocated[idx] -= back;
            amount -= back;
        }
    }

    /// The [`HostLoad`] view of `host` the policy traits judge. Policies
    /// see the host's *own* capacity — per-generation in heterogeneous
    /// fleets — not a global constant.
    fn host_load(&self, host: usize) -> HostLoad {
        HostLoad {
            cpu_booked: self.hosts.cpu_booked[host],
            cpu_used: self.hosts.cpu_used[host],
            free_local: (self.hosts.cap[host] - self.hosts.mem_local[host]).max(0.0),
        }
    }

    /// Whether `host` can take the task under the policy's placement
    /// rule; returns the local share it would use. `pool` is the free
    /// remote pool of the host's rack (snapshot or fresh — the caller
    /// owns that choice; scans pass the per-scan snapshot).
    fn fits(&self, host: usize, cpu: f64, cpu_used: f64, mem: f64, pool: f64) -> Option<f64> {
        if self.hosts.state[host] != HState::Active {
            return None;
        }
        self.cfg
            .policy
            .placement
            .admit(&self.host_load(host), cpu, cpu_used, mem, pool)
    }

    /// Answers one decision scan over shard `s`. Read-only — this is
    /// the function crew workers run concurrently — and the merge keys
    /// are built so the tuple minimum across shards equals the serial
    /// full-scan answer:
    ///
    /// - `Admit`/`Migrate` walk `by_booked` in stacking order and stop
    ///   at the shard's first fit; the key is the entry's stored booked
    ///   key, so the cross-shard minimum is the globally first-fitting
    ///   entry of the (conceptual) merged stacking order.
    /// - `WakeZombie`/`LeastUsed` minimize a canonicalized float key
    ///   ([`merge_key`]), reproducing the serial strict-`<` first-min.
    /// - `Sleeping`/`IdleZombie` want the lowest host index; the key is
    ///   a constant `0` so the tuple min is the index min.
    pub(crate) fn scan_shard(&self, s: usize, req: &ScanReq) -> ScanHit {
        let shard = &self.shards[s];
        match *req {
            ScanReq::Admit { cpu, cpu_used, mem } => {
                for &(key, i) in &shard.by_booked {
                    let pool = self.pool_buf[self.hosts.rack[i] as usize];
                    if self.fits(i, cpu, cpu_used, mem, pool).is_some() {
                        return Some((key, i));
                    }
                }
                None
            }
            ScanReq::Migrate { ref vm, skip } => {
                for &(key, i) in &shard.by_booked {
                    if i == skip {
                        continue;
                    }
                    let pool = self.pool_buf[self.hosts.rack[i] as usize];
                    if self.consolidation_fits(i, vm, pool) {
                        return Some((key, i));
                    }
                }
                None
            }
            ScanReq::WakeZombie => {
                let mut best: ScanHit = None;
                for &i in &shard.nonactive {
                    if self.hosts.state[i] != HState::Zombie {
                        continue;
                    }
                    let cand = (merge_key(self.hosts.remote_allocated[i]), i);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
                best
            }
            ScanReq::Sleeping => shard.nonactive.first().map(|&i| (0, i)),
            ScanReq::LeastUsed => {
                let mut best: ScanHit = None;
                for &i in &shard.active {
                    let cand = (merge_key(self.hosts.cpu_used[i]), i);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
                best
            }
            ScanReq::IdleZombie => shard
                .nonactive
                .iter()
                .find(|&&i| {
                    self.hosts.state[i] == HState::Zombie && self.hosts.remote_allocated[i] <= 1e-9
                })
                .map(|&i| (0, i)),
        }
    }

    /// Runs `req` over every shard — on the crew when one is up, inline
    /// otherwise — and returns the winning host.
    fn scan_merged(&self, req: ScanReq) -> Option<usize> {
        let hit = match &self.crew {
            Some(crew) => {
                let _span =
                    zombieland_obs::profile::span(zombieland_obs::profile::Phase::ShardRound);
                crew.round(self, req)
            }
            None => {
                let mut best = None;
                for s in 0..self.shards.len() {
                    best = merge_hit(best, self.scan_shard(s, &req));
                }
                best
            }
        };
        hit.map(|(_, i)| i)
    }

    /// Stacking choice: the fittable active host with the highest booked
    /// CPU (ties to the lowest index, as the old ascending full scan
    /// resolved them). Each shard's `by_booked` walk *is* that
    /// preference order restricted to the shard, so the key-merged first
    /// fits are the answer — no ranking pass. One pool snapshot serves
    /// the whole scan.
    fn pick_host(&mut self, cpu: f64, cpu_used: f64, mem: f64) -> Option<usize> {
        self.snapshot_pools();
        self.scan_merged(ScanReq::Admit { cpu, cpu_used, mem })
    }

    /// Wakes a host per policy preference. Returns its index.
    fn wake_one(&mut self) -> Option<usize> {
        // Nested inside an Arrivals/Consolidation span; self-time
        // accounting moves these nanoseconds out of the caller's phase.
        let _span = zombieland_obs::profile::span(zombieland_obs::profile::Phase::WakeUps);
        let pick = match self.cfg.policy.placement.wake_preference() {
            WakePreference::IdleZombieFirst => self
                .scan_merged(ScanReq::WakeZombie)
                .or_else(|| self.scan_merged(ScanReq::Sleeping)),
            WakePreference::FirstSleeping => self.scan_merged(ScanReq::Sleeping),
        }?;
        // A waking zombie reclaims its memory: re-place its allocations
        // on its rack's *other* zombies (so reactivate first — a zombie
        // would happily re-absorb its own shares), and shed whatever the
        // pool cannot hold onto the owning VMs' local backups, exactly as
        // the rack-level US_reclaim fallback does.
        let stranded = self.hosts.remote_allocated[pick];
        let rack = self.hosts.rack[pick];
        self.hosts.remote_allocated[pick] = 0.0;
        self.cooldown_expiry[pick] = self.round + WAKE_COOLDOWN_TICKS as u64;
        let waking_from = self.hosts.state[pick];
        self.update_host(pick, |h| {
            *h.state = HState::Active;
        });
        self.charge_transition(pick, waking_from, HState::Active);
        if stranded > 1e-9 {
            let placed = self.take_remote(rack, stranded);
            self.shed_vm_remote(rack, stranded - placed);
        }
        self.report.wakeups += 1;
        zombieland_obs::sink::counter_add("sim.wakeups", 1);
        zombieland_obs::trace_event!(self.last, "simulator", "wake", "host" => pick);
        Some(pick)
    }

    /// Reduces VMs' remote shares in `rack` by `amount`: their cold pages
    /// are now served from the local backups (the revocation fallback).
    ///
    /// Walks the rack's remote-holder index — the same ascending task
    /// order the old all-tasks sweep visited after its filters — via a
    /// persistent buffer, since cutting a VM to zero edits the set.
    fn shed_vm_remote(&mut self, rack: u32, mut amount: f64) {
        if amount <= 1e-9 {
            return;
        }
        let mut holders = std::mem::take(&mut self.shed_buf);
        holders.clear();
        holders.extend(self.remote_vms_by_rack[rack as usize].iter().copied());
        for &task in &holders {
            if amount <= 1e-9 {
                break;
            }
            let Some(vm) = self.vms[task].as_mut() else {
                continue;
            };
            if vm.remote <= 1e-9 {
                continue;
            }
            let cut = vm.remote.min(amount);
            vm.remote -= cut;
            amount -= cut;
            if vm.remote <= 1e-9 {
                self.remote_vms_by_rack[rack as usize].remove(&task);
            }
        }
        self.shed_buf = holders;
    }

    /// Drops `task` from the remote-holder index if it holds pool
    /// memory; call *before* clearing or re-racking its `remote`.
    fn unindex_remote(&mut self, task: usize, remote: f64, rack: u32) {
        if remote > 1e-9 {
            self.remote_vms_by_rack[rack as usize].remove(&task);
        }
    }

    /// Adds `task` to the remote-holder index if it now holds pool
    /// memory.
    fn index_remote(&mut self, task: usize, remote: f64, rack: u32) {
        if remote > 1e-9 {
            self.remote_vms_by_rack[rack as usize].insert(task);
        }
    }

    pub(crate) fn arrive(&mut self, trace: &ClusterTrace, task: usize) {
        let t = &trace.tasks()[task];
        let (cpu, mem) = (t.cpu_booked, t.mem_booked);
        let host = match self.pick_host(cpu, t.cpu_used, mem) {
            Some(h) => h,
            None => {
                // Wake hosts until the VM fits; as a last resort,
                // overcommit the least-used active host (real clouds
                // queue or overcommit rather than reject booked work).
                let mut found = None;
                loop {
                    if self.wake_one().is_none() {
                        break;
                    }
                    if let Some(h) = self.pick_host(cpu, t.cpu_used, mem) {
                        found = Some(h);
                        break;
                    }
                }
                match found {
                    Some(h) => h,
                    None => match self.scan_merged(ScanReq::LeastUsed) {
                        Some(h) => {
                            self.report.overcommitted += 1;
                            zombieland_obs::sink::counter_add("sim.overcommitted", 1);
                            h
                        }
                        None => {
                            self.report.dropped += 1;
                            zombieland_obs::sink::counter_add("sim.dropped", 1);
                            zombieland_obs::trace_event!(
                                self.last, "simulator", "drop", "task" => task);
                            return;
                        }
                    },
                }
            }
        };
        let pool = self.pool_free(self.hosts.rack[host]);
        let local = match self.fits(host, cpu, t.cpu_used, mem, pool) {
            Some(l) => l,
            None => {
                // Overcommit fallback: take whatever local memory is left.
                let free = (self.hosts.cap[host] - self.hosts.mem_local[host]).max(0.0);
                mem.min(free)
            }
        };
        let remote = (mem - local).max(0.0);
        let rack = self.hosts.rack[host];
        let taken = if remote > 1e-9 {
            self.take_remote(rack, remote)
        } else {
            0.0
        };
        let used = t.cpu_used;
        self.update_host(host, |h| {
            *h.cpu_booked += cpu;
            *h.cpu_used += used;
            *h.mem_local += local;
            h.vms.push(task);
        });
        self.vms[task] = Some(VmState {
            host,
            local_mem: local,
            remote: taken,
            parked: 0.0,
        });
        self.index_remote(task, taken, rack);
        zombieland_obs::sink::counter_add("sim.arrivals", 1);
        zombieland_obs::trace_event!(self.last, "simulator", "arrive",
            "task" => task, "host" => host);
    }

    pub(crate) fn depart(&mut self, trace: &ClusterTrace, task: usize) {
        let Some(vm) = self.vms[task].take() else {
            return; // Dropped at arrival.
        };
        let t = &trace.tasks()[task];
        let (cpu, used, local) = (t.cpu_booked, t.cpu_used, vm.local_mem);
        self.update_host(vm.host, |h| {
            *h.cpu_booked = (*h.cpu_booked - cpu).max(0.0);
            *h.cpu_used = (*h.cpu_used - used).max(0.0);
            *h.mem_local = (*h.mem_local - local).max(0.0);
            h.vms.retain(|&v| v != task);
        });
        let rack = self.hosts.rack[vm.host];
        self.unindex_remote(task, vm.remote, rack);
        self.give_back_remote(rack, vm.remote);
        self.parked_mem = (self.parked_mem - vm.parked).max(0.0);
        zombieland_obs::sink::counter_add("sim.departures", 1);
        zombieland_obs::trace_event!(self.last, "simulator", "depart",
            "task" => task, "host" => vm.host);
    }

    /// Invariant sweep: VM lists, booked sums, pool accounting and the
    /// sharded index sets all agree. O(hosts × vms), so it runs only
    /// when [`validate_enabled`] says so (debug builds by default, the
    /// scenario `validate` switch opts release builds in).
    fn validate(&self) {
        let mut host_vms = 0usize;
        for i in 0..self.hosts.len() {
            let state = self.hosts.state[i];
            let rack = self.hosts.rack[i];
            host_vms += self.hosts.vms[i].len();
            for &t in &self.hosts.vms[i] {
                assert_eq!(
                    self.vms[t].as_ref().map(|v| v.host),
                    Some(i),
                    "vm {t} listed on host {i} but placed elsewhere"
                );
            }
            assert!(self.hosts.cpu_booked[i] >= -1e-6 && self.hosts.mem_local[i] >= -1e-6);
            if state != HState::Zombie {
                assert!(
                    self.hosts.remote_allocated[i] <= 1e-6,
                    "non-zombie lends: host {i} {:?} holds {}",
                    state,
                    self.hosts.remote_allocated[i]
                );
            }
            // The shard index sets mirror host state exactly.
            let shard = &self.shards[self.shard_of(i)];
            assert_eq!(
                shard.active.contains(&i),
                state == HState::Active,
                "host {i}: active-set membership disagrees with {state:?}"
            );
            assert_eq!(
                shard
                    .by_booked
                    .contains(&(booked_key(self.hosts.cpu_booked[i]), i)),
                state == HState::Active,
                "host {i}: booked-key membership disagrees with {state:?} \
                 (or the indexed key drifted from the live value)"
            );
            assert_eq!(
                self.by_used.contains(&(self.used_key[i], i)),
                state == HState::Active,
                "host {i}: used-key membership disagrees with {state:?}"
            );
            if state == HState::Active && !self.used_dirty_flag[i] {
                assert_eq!(
                    self.used_key[i],
                    merge_key(self.hosts.cpu_used[i]),
                    "host {i}: clean used key drifted from the live load"
                );
            }
            assert_eq!(
                shard.nonactive.contains(&i),
                state != HState::Active,
                "host {i}: nonactive-set membership disagrees with {state:?}"
            );
            assert_eq!(
                self.zombies_by_rack[rack as usize].contains(&i),
                state == HState::Zombie,
                "host {i}: rack {rack} zombie-set membership disagrees with {state:?}"
            );
        }
        let active_total: usize = self.shards.iter().map(|s| s.active.len()).sum();
        let booked_total: usize = self.shards.iter().map(|s| s.by_booked.len()).sum();
        assert_eq!(
            booked_total, active_total,
            "booked-ordered sets cover exactly the active hosts"
        );
        assert_eq!(
            self.by_used.len(),
            active_total,
            "used-ordered set covers exactly the active hosts"
        );
        let indexed: usize = self.zombies_by_rack.iter().map(|s| s.len()).sum();
        let zombies = self
            .hosts
            .state
            .iter()
            .filter(|&&s| s == HState::Zombie)
            .count();
        assert_eq!(indexed, zombies, "zombie index covers every zombie once");
        let live = self.vms.iter().filter(|v| v.is_some()).count();
        assert_eq!(host_vms, live, "every live VM is on exactly one host");
        // The capacity column matches the generation column exactly.
        for i in 0..self.hosts.len() {
            let expected = match zombieland_trace::generations::by_year(self.hosts.generation[i]) {
                Some(g) => {
                    self.cfg.usable_mem * (g.gib_per_socket() as f64 / REFERENCE_GIB_PER_SOCKET)
                }
                None => self.cfg.usable_mem,
            };
            assert_eq!(
                self.hosts.cap[i].to_bits(),
                expected.to_bits(),
                "host {i}: capacity drifted from its generation ({})",
                self.hosts.generation[i]
            );
        }
        let vm_remote: f64 = self.vms.iter().flatten().map(|v| v.remote).sum();
        if self.pools_host_memory() {
            let host_remote: f64 = self.hosts.remote_allocated.iter().sum();
            assert!(
                (vm_remote - host_remote).abs() < 1e-3,
                "pool accounting: vms {vm_remote} vs hosts {host_remote}"
            );
            assert!(
                self.cxl_allocated_total <= 1e-9,
                "zombie backend booked the shared tier: {}",
                self.cxl_allocated_total
            );
        } else {
            assert!(
                (vm_remote - self.cxl_allocated_total).abs() < 1e-3,
                "pool accounting: vms {vm_remote} vs shared tier {}",
                self.cxl_allocated_total
            );
            let mut per_rack = 0.0;
            for (r, &alloc) in self.cxl_allocated.iter().enumerate() {
                assert!(
                    (-1e-6..=self.cfg.cxl_capacity + 1e-6).contains(&alloc),
                    "rack {r} shared-tier allocation {alloc} outside \
                     [0, {}]",
                    self.cfg.cxl_capacity
                );
                per_rack += alloc;
            }
            assert!(
                (per_rack - self.cxl_allocated_total).abs() < 1e-3,
                "shared-tier running total drifted: {per_rack} vs {}",
                self.cxl_allocated_total
            );
        }
        // The remote-holder index matches the VMs exactly.
        for (task, vm) in self.vms.iter().enumerate() {
            let expected = vm.as_ref().filter(|v| v.remote > 1e-9).map(|v| v.host);
            for (r, set) in self.remote_vms_by_rack.iter().enumerate() {
                let should = expected.is_some_and(|h| self.hosts.rack[h] as usize == r);
                assert_eq!(
                    set.contains(&task),
                    should,
                    "task {task}: rack {r} remote-holder membership disagrees"
                );
            }
        }
    }

    /// One consolidation round.
    pub(crate) fn consolidate(&mut self, trace: &ClusterTrace) {
        let policy = self.cfg.policy.consolidation;
        // Oasis first parks idle VMs' cold memory, shrinking footprints.
        if policy.parks_idle_memory() {
            self.oasis_park(trace);
        }

        self.round += 1;
        // Re-key only the hosts whose load changed since the last round.
        // Every other `by_used` entry still carries the key it was last
        // filed under, so the drain is O(changed), not O(active).
        let mut dirty = std::mem::take(&mut self.used_dirty);
        for h in dirty.drain(..) {
            self.used_dirty_flag[h] = false;
            if self.hosts.state[h] != HState::Active {
                // Deactivation already dropped it from the index; a later
                // reactivation re-files it under the live key.
                continue;
            }
            let key = merge_key(self.hosts.cpu_used[h]);
            if key != self.used_key[h] {
                let removed = self.by_used.remove(&(self.used_key[h], h));
                debug_assert!(removed, "active host indexed under its stored used key");
                self.by_used.insert((key, h));
                self.used_key[h] = key;
            }
        }
        self.used_dirty = dirty;

        // Underloaded hosts, least loaded first: an ascending walk of the
        // freshly re-keyed `by_used` with an early exit at the threshold,
        // replacing the old full active-set gather + sort. `merge_key`
        // orders exactly as f64 `<` for the non-NaN, zero-canonical loads
        // the simulator produces, and ties break on index — the same
        // total order the old `total_cmp().then(cmp)` sort produced.
        // Candidates are snapshot into the buffer before evacuating
        // because try_evacuate itself edits `by_used`.
        let underload = policy.underload_threshold();
        let limit = merge_key(underload);
        let mut order = std::mem::take(&mut self.order_buf);
        order.clear();
        order.extend(
            self.by_used
                .range(..(limit, 0))
                .map(|&(_, i)| i)
                .filter(|&i| self.round >= self.cooldown_expiry[i]),
        );

        for &host in &order {
            self.try_evacuate(trace, host);
        }
        self.order_buf = order;

        if self.validate_on {
            self.validate();
        }

        // §4.4: "If the global-mem-ctr holds huge amounts of free memory
        // (e.g. more than the total memory of a rack server), the cloud
        // manager may decide to transition zombie servers to S3." Only
        // zombies serving nothing are demoted (give_back_remote drains
        // the least-loaded ones toward zero), and generous headroom stays
        // in the pool so placements do not start waking zombies.
        if let Some(threshold) = self.cfg.sz_demote_threshold {
            while self.cfg.policy.consolidation.demotes_idle_zombies() {
                // First (lowest-index) idle zombie, as the old full-fleet
                // `position` scan found it.
                match self.scan_merged(ScanReq::IdleZombie) {
                    Some(i)
                        if self.pool_free_total() - self.usable_mem()
                            >= threshold + self.usable_mem() =>
                    {
                        self.update_host(i, |h| *h.state = HState::Sleeping);
                    }
                    _ => break,
                }
            }
        }
    }

    /// Tries to move every VM off `host`; on success the host suspends
    /// (Sz for zombie-evacuating policies, S3 otherwise).
    ///
    /// Under ZombieStack the host flips into Sz *before* the moves are
    /// planned, so its own memory backs the departing VMs' remote shares
    /// — without this, a memory-bound fleet can never bootstrap the
    /// remote pool (every evacuation would need a pool that only
    /// evacuations can create).
    fn try_evacuate(&mut self, trace: &ClusterTrace, host: usize) {
        let policy = self.cfg.policy.consolidation;
        // A shared-tier backend has no use for Sz lenders: an evacuated
        // host suspends all the way to S3, and reclaiming pooled memory
        // never wakes anyone — that is the CXL trade.
        let zombie_mode = policy.evacuates_to_zombie() && self.pools_host_memory();
        if zombie_mode {
            self.update_host(host, |h| *h.state = HState::Zombie);
        }
        // Resident VM ids go through a persistent buffer instead of a
        // fresh clone per evacuation attempt.
        let mut resident = std::mem::take(&mut self.evac_buf);
        resident.clear();
        resident.extend_from_slice(&self.hosts.vms[host]);
        let mut moves: Vec<PendingMove> = Vec::with_capacity(resident.len());
        let mut ok = true;
        for &task in &resident {
            let t = &trace.tasks()[task];
            let mem = policy
                .migration_footprint(t.mem_booked, self.vms[task].as_ref().map(|v| v.local_mem));
            // Highest-booked fittable target, ties to the lowest index —
            // the old `max_by(...).then(b.cmp(&a))` full scan. The
            // booked-ordered walks stop at each shard's first fitting
            // entry; pools are re-snapshot per VM because each
            // reserve_move shifts them.
            self.snapshot_pools();
            let migrant = crate::policy::MigrantVm {
                cpu_booked: t.cpu_booked,
                cpu_used: t.cpu_used,
                mem,
                wss: t.mem_used,
            };
            match self.scan_merged(ScanReq::Migrate {
                vm: migrant,
                skip: host,
            }) {
                Some(tgt) => moves.push(self.reserve_move(trace, task, tgt)),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        self.evac_buf = resident;
        if !ok {
            // Roll back reservations; the host stays up (the aborted
            // transition never left the OS, so no energy is charged).
            for m in moves.into_iter().rev() {
                self.rollback_move(trace, m);
            }
            if zombie_mode {
                // Planning may have parked pool shares on this host (it
                // was briefly a zombie) and the give-backs may have
                // drained its peers instead. Reactivate first, then
                // migrate any residue to the peers; whatever cannot fit
                // sheds to the owning VMs' local backups.
                let stuck = self.hosts.remote_allocated[host];
                let rack = self.hosts.rack[host];
                self.hosts.remote_allocated[host] = 0.0;
                self.update_host(host, |h| *h.state = HState::Active);
                if stuck > 1e-9 {
                    let moved = self.take_remote(rack, stuck);
                    self.shed_vm_remote(rack, stuck - moved);
                }
            }
            return;
        }
        // Commit: detach every VM from the source.
        for m in &moves {
            let t = &trace.tasks()[m.task];
            let (cpu, used, old_local, task) = (t.cpu_booked, t.cpu_used, m.old_local, m.task);
            self.update_host(host, |h| {
                *h.cpu_booked = (*h.cpu_booked - cpu).max(0.0);
                *h.cpu_used = (*h.cpu_used - used).max(0.0);
                *h.mem_local = (*h.mem_local - old_local).max(0.0);
                h.vms.retain(|&v| v != task);
            });
            self.report.migrations += 1;
        }
        zombieland_obs::sink::counter_add("sim.migrations", moves.len() as u64);
        zombieland_obs::trace_event!(self.last, "simulator", "evacuate",
            "host" => host, "moves" => moves.len(),
            "to_zombie" => zombie_mode);
        if !zombie_mode {
            self.update_host(host, |h| {
                debug_assert!(h.vms.is_empty());
                *h.state = HState::Sleeping;
            });
        }
        self.charge_transition(host, HState::Active, HState::Sleeping);
    }

    /// Books a pending move on the target host (two-phase evacuate). The
    /// source host is *not* touched yet; commit or rollback settles it.
    fn reserve_move(&mut self, trace: &ClusterTrace, task: usize, target: usize) -> PendingMove {
        let t = &trace.tasks()[task];
        let free_local = (self.hosts.cap[target] - self.hosts.mem_local[target]).max(0.0);
        let vm = self.vms[task].as_mut().expect("placed");
        let (old_local, old_remote, source) = (vm.local_mem, vm.remote, vm.host);
        let mem = t.mem_booked - vm.parked;
        let new_local = mem.min(free_local);
        vm.local_mem = new_local;
        vm.host = target;
        let (cpu, used) = (t.cpu_booked, t.cpu_used);
        self.update_host(target, |h| {
            *h.cpu_booked += cpu;
            *h.cpu_used += used;
            *h.mem_local += new_local;
            h.vms.push(task);
        });
        // Remote shares are rack-local: return the source rack's shares
        // and take the whole new requirement from the target's rack.
        let source_rack = self.hosts.rack[source];
        let target_rack = self.hosts.rack[target];
        self.unindex_remote(task, old_remote, source_rack);
        if old_remote > 1e-9 {
            self.give_back_remote(source_rack, old_remote);
        }
        let need = (mem - new_local).max(0.0);
        let taken = if need > 1e-9 {
            self.take_remote(target_rack, need)
        } else {
            0.0
        };
        self.vms[task].as_mut().expect("placed").remote = taken;
        self.index_remote(task, taken, target_rack);
        PendingMove {
            task,
            source,
            target,
            old_local,
            old_remote,
            new_local,
            taken,
        }
    }

    /// Undoes a reservation.
    fn rollback_move(&mut self, trace: &ClusterTrace, m: PendingMove) {
        let t = &trace.tasks()[m.task];
        let (cpu, used, new_local, task) = (t.cpu_booked, t.cpu_used, m.new_local, m.task);
        self.update_host(m.target, |h| {
            *h.cpu_booked = (*h.cpu_booked - cpu).max(0.0);
            *h.cpu_used = (*h.cpu_used - used).max(0.0);
            *h.mem_local = (*h.mem_local - new_local).max(0.0);
            h.vms.retain(|&v| v != task);
        });
        let target_rack = self.hosts.rack[m.target];
        self.unindex_remote(m.task, m.taken, target_rack);
        if m.taken > 1e-9 {
            self.give_back_remote(target_rack, m.taken);
        }
        // Best effort: re-take the old shares in the source rack (the
        // pool may have shifted; any shortfall surfaces as pool pressure
        // on the next placement check, never as lost accounting).
        let source_rack = self.hosts.rack[m.source];
        let retaken = if m.old_remote > 1e-9 {
            self.take_remote(source_rack, m.old_remote)
        } else {
            0.0
        };
        let vm = self.vms[m.task].as_mut().expect("placed");
        vm.host = m.source;
        vm.local_mem = m.old_local;
        vm.remote = retaken;
        self.index_remote(m.task, retaken, source_rack);
    }

    /// The migration feasibility check, judged by the policy. Vanilla
    /// Neat "places a VM on a server only if the latter holds all the
    /// resources booked by the VM"; ZombieStack replaces that with the
    /// 30 %-of-WSS rule and packs by *actual* CPU usage (overload
    /// detection guards the overcommit), which is where most of its
    /// extra consolidation comes from.
    fn consolidation_fits(&self, target: usize, vm: &crate::policy::MigrantVm, pool: f64) -> bool {
        if self.hosts.state[target] != HState::Active {
            return false;
        }
        self.cfg.policy.consolidation.accepts_migration(
            &self.host_load(target),
            vm,
            pool,
            self.cfg.cpu_fill_cap,
        )
    }

    /// Oasis: park the cold memory of idle VMs on underused hosts.
    fn oasis_park(&mut self, trace: &ClusterTrace) {
        for host in 0..self.hosts.len() {
            if self.hosts.state[host] != HState::Active
                || self.hosts.cpu_used[host] >= self.oasis.underload_threshold
            {
                continue;
            }
            // Index-walk the VM list in place: parking never edits
            // `vms`, so no defensive clone is needed.
            for vi in 0..self.hosts.vms[host].len() {
                let task = self.hosts.vms[host][vi];
                let t = &trace.tasks()[task];
                if t.cpu_used >= self.oasis.idle_vm_threshold {
                    continue;
                }
                let vm = self.vms[task].as_mut().expect("placed");
                if vm.parked > 0.0 {
                    continue; // Already parked.
                }
                // Partial migration: the footprint shrinks to the working
                // set; the rest parks on memory servers.
                let park = (vm.local_mem - t.mem_used).max(0.0);
                if park <= 1e-9 {
                    continue;
                }
                vm.parked = park;
                vm.local_mem -= park;
                self.parked_mem += park;
                self.report.peak_parked = self.report.peak_parked.max(self.parked_mem);
                self.update_host(host, |h| {
                    *h.mem_local = (*h.mem_local - park).max(0.0);
                });
            }
        }
    }
}
