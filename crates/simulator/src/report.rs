//! Simulation outcomes: the per-run report and timeline snapshots.

use zombieland_simcore::{Joules, SimTime, Watts};

/// Outcome of one simulation run.
///
/// `PartialEq` is derived so tests can assert the runner's bit-for-bit
/// determinism contract: the same trace, config and seed must produce
/// an *identical* report at any worker count.
#[derive(Clone, PartialEq, Debug)]
pub struct SimReport {
    /// Label of the policy simulated ([`crate::policy::PolicySpec::label`]).
    pub policy: &'static str,
    /// Fleet energy over the trace.
    pub energy: Joules,
    /// VM migrations performed.
    pub migrations: u64,
    /// Host wake-ups (S3 or Sz exits).
    pub wakeups: u64,
    /// Arrivals that could not be placed even after wake-ups (should be
    /// ~0 on feasible traces).
    pub dropped: u64,
    /// Arrivals placed by overcommitting an active host as a last
    /// resort.
    pub overcommitted: u64,
    /// Integral of host-count in each state, in host-seconds
    /// (active, zombie, sleeping).
    pub state_seconds: [f64; 3],
    /// Peak memory parked on Oasis memory servers (server-equivalents).
    pub peak_parked: f64,
    /// Trace events replayed (arrivals + departures).
    pub events: u64,
    /// Peak number of events resident in the replay buffer at once,
    /// counting the in-flight consolidation tick. Bounded by the
    /// streaming chunk size, not the trace length — the guard that the
    /// 29-day event list never fully materializes.
    pub peak_queue: u64,
    /// Periodic fleet snapshots (empty unless
    /// [`crate::SimConfig::sample_interval`] is set).
    pub timeline: Vec<TimelineSample>,
}

/// One fleet snapshot.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TimelineSample {
    /// Snapshot time.
    pub at: SimTime,
    /// Hosts active / zombie / sleeping.
    pub counts: [u64; 3],
    /// Fleet IT power at that instant.
    pub power: Watts,
}

impl SimReport {
    /// Energy saving versus a baseline run, in percent.
    ///
    /// A zero-energy baseline (empty or zero-duration trace) reports
    /// zero savings rather than letting `0/0 = NaN` leak into tables.
    pub fn savings_pct(&self, baseline: &SimReport) -> f64 {
        if baseline.energy.get() == 0.0 {
            return 0.0;
        }
        (1.0 - self.energy / baseline.energy) * 100.0
    }
}
