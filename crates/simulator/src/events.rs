//! The event loop: streaming trace replay, consolidation ticks,
//! timeline sampling.
//!
//! The loop never materializes the trace's event list. It pulls
//! chronologically ordered events from [`ClusterTrace::event_stream`] in
//! fixed-size chunks and merges the single self-rescheduling
//! consolidation tick into the stream by comparison: the tick fires
//! whenever it is strictly earlier than the next trace event, and trace
//! events win ties. That is exactly the order the old materialized queue
//! produced — events were scheduled before the tick, so its FIFO
//! tie-break fired them first at equal instants — which keeps every
//! report byte-identical while holding resident event storage at
//! [`EVENT_CHUNK`] entries instead of the full 29-day list.

use zombieland_obs::profile;
use zombieland_simcore::SimTime;
use zombieland_trace::google::{ClusterTrace, EventKind};

use crate::dc::Dc;
use crate::report::{SimReport, TimelineSample};
use crate::SimConfig;

/// Events pulled from the stream per refill. Small enough that the
/// buffer is megabytes at most (the full-scale trace would need
/// gigabytes materialized), large enough to amortize refill overhead.
pub const EVENT_CHUNK: usize = 1 << 16;

/// Fires one consolidation tick at `now` and returns the next tick
/// time, if it falls within the trace.
fn tick(
    dc: &mut Dc,
    trace: &ClusterTrace,
    cfg: &SimConfig,
    now: SimTime,
    end: SimTime,
    next_sample: &mut SimTime,
) -> Option<SimTime> {
    dc.advance(now);
    if cfg.policy.consolidation.enabled() {
        let _span = profile::span(profile::Phase::Consolidation);
        dc.consolidate(trace);
    }
    if let Some(every) = cfg.sample_interval {
        if *next_sample <= now {
            let _span = profile::span(profile::Phase::Sampling);
            dc.report.timeline.push(TimelineSample {
                at: now,
                counts: dc.state_counts,
                power: dc.total_power,
            });
            let mw = (dc.total_power.get() * 1000.0).round() as u64;
            zombieland_obs::sink::gauge_set("sim.power_mw", mw);
            zombieland_obs::trace_event!(now, "simulator", "sample",
                "active" => dc.state_counts[0],
                "zombie" => dc.state_counts[1],
                "sleeping" => dc.state_counts[2],
                "power_mw" => mw);
            *next_sample = now + every;
        }
    }
    let next = now + cfg.consolidation_interval;
    (next <= end).then_some(next)
}

/// Runs one policy over a trace.
///
/// # Panics
///
/// Panics if `cfg` is invalid (see [`SimConfig::validate`]) — a zero
/// `racks` or `usable_mem` would silently corrupt the run, so it is
/// rejected up front instead of clamped at each use site.
pub fn simulate(trace: &ClusterTrace, cfg: &SimConfig) -> SimReport {
    if let Err(e) = cfg.validate() {
        panic!("invalid SimConfig: {e}");
    }
    let setup = profile::span(profile::Phase::SimSetup);
    let mut dc = Dc::new(trace, cfg);
    let end = SimTime::ZERO + trace.config().duration;
    let mut stream = trace.event_stream();
    let mut buf = Vec::with_capacity(EVENT_CHUNK.min(trace.events_len()));
    let first_tick = SimTime::ZERO + cfg.consolidation_interval;
    let mut next_tick = (first_tick <= end).then_some(first_tick);
    drop(setup);

    let mut next_sample = SimTime::ZERO;
    let mut processed = 0u64;
    let mut peak_queue = 0u64;
    loop {
        buf.clear();
        buf.extend(stream.by_ref().take(EVENT_CHUNK));
        if buf.is_empty() {
            break;
        }
        // The streaming-memory contract: no more than one chunk of the
        // trace is ever resident (+1 for the in-flight tick). Checked
        // under ZL_VALIDATE so a regression to full materialization
        // trips loudly instead of silently re-growing the footprint.
        if dc.validate_on {
            assert!(buf.len() <= EVENT_CHUNK, "event buffer exceeds one chunk");
        }
        peak_queue = peak_queue.max(buf.len() as u64 + 1);
        for &(at, kind, task) in &buf {
            while let Some(t) = next_tick {
                if t >= at {
                    break;
                }
                next_tick = tick(&mut dc, trace, cfg, t, end, &mut next_sample);
            }
            dc.advance(at);
            match kind {
                EventKind::Arrive => {
                    let _span = profile::span(profile::Phase::Arrivals);
                    dc.arrive(trace, task);
                }
                EventKind::Depart => {
                    let _span = profile::span(profile::Phase::Departures);
                    dc.depart(trace, task);
                }
            }
            processed += 1;
        }
    }
    // Ticks scheduled past the last trace event still fire (state
    // transitions and samples continue to the end of the trace).
    while let Some(t) = next_tick {
        next_tick = tick(&mut dc, trace, cfg, t, end, &mut next_sample);
    }
    dc.advance(end);
    dc.report.energy = dc.energy;
    dc.report.events = processed;
    dc.report.peak_queue = peak_queue;
    if zombieland_obs::sink::metrics_enabled() {
        let r = &dc.report;
        zombieland_obs::sink::gauge_set("sim.energy_mj", (r.energy.get() * 1000.0).round() as u64);
        zombieland_obs::sink::counter_add("sim.runs", 1);
        zombieland_obs::trace_event!(dc.last, "simulator", "run_done",
            "policy" => r.policy,
            "energy_mj" => (r.energy.get() * 1000.0).round() as u64,
            "migrations" => r.migrations,
            "wakeups" => r.wakeups,
            "dropped" => r.dropped,
            "overcommitted" => r.overcommitted);
    }
    dc.report
}
