//! The event loop: trace replay, consolidation ticks, timeline
//! sampling.

use zombieland_obs::profile;
use zombieland_simcore::{EventQueue, SimTime};
use zombieland_trace::google::{ClusterTrace, EventKind};

use crate::dc::Dc;
use crate::report::{SimReport, TimelineSample};
use crate::SimConfig;

/// What the simulation loop schedules: a trace event (by index) or a
/// consolidation tick. Trace events are scheduled first, so the queue's
/// FIFO tie-break fires them before a tick at the same instant — exactly
/// the order the old two-pointer merge used.
enum SimEvent {
    Task(usize),
    Tick,
}

thread_local! {
    /// Recycled event-queue storage. Grid experiments run tens of
    /// simulations per worker thread; reusing one heap allocation per
    /// thread keeps N workers from hammering the global allocator with
    /// multi-megabyte queue builds. [`EventQueue::clear`] resets the
    /// FIFO tie-break counter, so a recycled queue is observably
    /// identical to a fresh one.
    static QUEUE_POOL: std::cell::RefCell<Option<EventQueue<SimEvent>>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs one policy over a trace.
///
/// # Panics
///
/// Panics if `cfg` is invalid (see [`SimConfig::validate`]) — a zero
/// `racks` or `usable_mem` would silently corrupt the run, so it is
/// rejected up front instead of clamped at each use site.
pub fn simulate(trace: &ClusterTrace, cfg: &SimConfig) -> SimReport {
    if let Err(e) = cfg.validate() {
        panic!("invalid SimConfig: {e}");
    }
    let setup = profile::span(profile::Phase::SimSetup);
    let mut dc = Dc::new(trace, cfg);

    let events = trace.events();
    let end = SimTime::ZERO + trace.config().duration;
    // Every trace event plus the single in-flight consolidation tick:
    // sized up front so the heap never reallocates mid-run. The queue
    // itself comes from the per-thread pool when a previous run on this
    // worker left one behind.
    let mut queue: EventQueue<SimEvent> = QUEUE_POOL
        .with(|p| p.borrow_mut().take())
        .unwrap_or_default();
    queue.clear();
    queue.reserve(events.len() + 1);
    for (i, e) in events.iter().enumerate() {
        queue.schedule(e.0, SimEvent::Task(i));
    }
    let first_tick = SimTime::ZERO + cfg.consolidation_interval;
    if first_tick <= end {
        queue.schedule(first_tick, SimEvent::Tick);
    }
    drop(setup);
    let consolidation_on = cfg.policy.consolidation.enabled();
    let mut next_sample = SimTime::ZERO;
    while let Some((now, ev)) = queue.pop() {
        dc.advance(now);
        match ev {
            SimEvent::Tick => {
                if consolidation_on {
                    let _span = profile::span(profile::Phase::Consolidation);
                    dc.consolidate(trace);
                }
                if let Some(every) = cfg.sample_interval {
                    if next_sample <= now {
                        let _span = profile::span(profile::Phase::Sampling);
                        dc.report.timeline.push(TimelineSample {
                            at: now,
                            counts: dc.state_counts,
                            power: dc.total_power,
                        });
                        let mw = (dc.total_power.get() * 1000.0).round() as u64;
                        zombieland_obs::sink::gauge_set("sim.power_mw", mw);
                        zombieland_obs::trace_event!(now, "simulator", "sample",
                            "active" => dc.state_counts[0],
                            "zombie" => dc.state_counts[1],
                            "sleeping" => dc.state_counts[2],
                            "power_mw" => mw);
                        next_sample = now + every;
                    }
                }
                let next = now + cfg.consolidation_interval;
                if next <= end {
                    queue.schedule(next, SimEvent::Tick);
                }
            }
            SimEvent::Task(i) => {
                let (_, kind, task) = events[i];
                match kind {
                    EventKind::Arrive => {
                        let _span = profile::span(profile::Phase::Arrivals);
                        dc.arrive(trace, task);
                    }
                    EventKind::Depart => {
                        let _span = profile::span(profile::Phase::Departures);
                        dc.depart(trace, task);
                    }
                }
            }
        }
    }
    // The loop drained the queue; park its storage for the next run on
    // this thread.
    QUEUE_POOL.with(|p| *p.borrow_mut() = Some(queue));
    dc.advance(end);
    dc.report.energy = dc.energy;
    if zombieland_obs::sink::metrics_enabled() {
        let r = &dc.report;
        zombieland_obs::sink::gauge_set("sim.energy_mj", (r.energy.get() * 1000.0).round() as u64);
        zombieland_obs::sink::counter_add("sim.runs", 1);
        zombieland_obs::trace_event!(dc.last, "simulator", "run_done",
            "policy" => r.policy,
            "energy_mj" => (r.energy.get() * 1000.0).round() as u64,
            "migrations" => r.migrations,
            "wakeups" => r.wakeups,
            "dropped" => r.dropped,
            "overcommitted" => r.overcommitted);
    }
    dc.report
}
