use crate::{simulate, PolicyKind, SimConfig, SimReport};
use zombieland_energy::MachineProfile;
use zombieland_simcore::SimDuration;
use zombieland_trace::google::ClusterTrace;
use zombieland_trace::TraceConfig;

fn small_trace(ratio: f64) -> ClusterTrace {
    let mut cfg = TraceConfig::small(11);
    cfg.servers = 40;
    cfg.duration = SimDuration::from_hours(24);
    cfg.avg_utilization = 0.35;
    cfg.mem_cpu_ratio = ratio;
    ClusterTrace::generate(cfg)
}

fn run(policy: PolicyKind, trace: &ClusterTrace) -> SimReport {
    simulate(trace, &SimConfig::new(policy, MachineProfile::hp()))
}

#[test]
fn baseline_keeps_everything_on() {
    let trace = small_trace(1.0);
    let r = run(PolicyKind::AlwaysOn, &trace);
    assert_eq!(r.migrations, 0);
    assert_eq!(r.state_seconds[1], 0.0);
    assert_eq!(r.state_seconds[2], 0.0);
    assert!(r.energy.get() > 0.0);
}

#[test]
fn policies_order_as_in_figure10() {
    let trace = small_trace(1.0);
    let base = run(PolicyKind::AlwaysOn, &trace);
    let neat = run(PolicyKind::Neat, &trace);
    let oasis = run(PolicyKind::Oasis, &trace);
    let zombie = run(PolicyKind::ZombieStack, &trace);
    let (sn, so, sz) = (
        neat.savings_pct(&base),
        oasis.savings_pct(&base),
        zombie.savings_pct(&base),
    );
    assert!(sn > 5.0, "Neat saves something: {sn}");
    // Oasis ~ Neat at small scale (its memory-server cost quantizes
    // to whole servers); the paper's +4-point edge needs DC scale.
    assert!(so >= sn - 2.5, "Oasis ~ Neat: {so} vs {sn}");
    assert!(sz > sn, "ZombieStack wins: {sz} vs {sn}");
    assert_eq!(zombie.dropped, 0);
    assert!(zombie.state_seconds[1] > 0.0, "zombies existed");
}

#[test]
fn memory_pressure_widens_the_gap() {
    // The paper's modified traces (mem = 2× cpu) hurt Neat much more
    // than ZombieStack.
    let original = small_trace(1.0);
    let modified = original.modified();
    let gap = |trace: &ClusterTrace| {
        let base = run(PolicyKind::AlwaysOn, trace);
        let neat = run(PolicyKind::Neat, trace).savings_pct(&base);
        let zombie = run(PolicyKind::ZombieStack, trace).savings_pct(&base);
        zombie - neat
    };
    let g_orig = gap(&original);
    let g_mod = gap(&modified);
    assert!(
        g_mod > g_orig,
        "gap widens under memory pressure: {g_orig} -> {g_mod}"
    );
}

#[test]
fn nothing_dropped_on_feasible_traces() {
    let trace = small_trace(1.0);
    for p in [PolicyKind::Neat, PolicyKind::Oasis, PolicyKind::ZombieStack] {
        let r = run(p, &trace);
        assert_eq!(r.dropped, 0, "{:?}", p);
    }
}

#[test]
fn rack_local_pools_constrain_but_work() {
    let trace = small_trace(1.5); // Memory-pressured: the pool matters.
    let base = run(PolicyKind::AlwaysOn, &trace);
    let global = simulate(
        &trace,
        &SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp()),
    );
    let racked = simulate(
        &trace,
        &SimConfig {
            racks: 8,
            ..SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp())
        },
    );
    assert_eq!(racked.dropped, 0);
    assert!(racked.state_seconds[1] > 0.0, "zombies per rack exist");
    // Fragmenting the pool can only cost savings, never gain much.
    assert!(
        racked.savings_pct(&base) <= global.savings_pct(&base) + 2.0,
        "racked {} vs global {}",
        racked.savings_pct(&base),
        global.savings_pct(&base)
    );
}

#[test]
fn transition_costs_reduce_savings() {
    let trace = small_trace(1.0);
    let base = run(PolicyKind::AlwaysOn, &trace);
    let with = simulate(
        &trace,
        &SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp()),
    );
    let without = simulate(
        &trace,
        &SimConfig {
            transition_costs: false,
            ..SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp())
        },
    );
    assert!(with.energy.get() > without.energy.get());
    // But they stay second-order (< 5 points of savings).
    assert!(without.savings_pct(&base) - with.savings_pct(&base) < 5.0);
}

#[test]
fn timeline_sampling() {
    let trace = small_trace(1.0);
    let r = simulate(
        &trace,
        &SimConfig {
            sample_interval: Some(SimDuration::from_hours(1)),
            ..SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp())
        },
    );
    assert!(
        r.timeline.len() >= 20,
        "hourly samples over a day: {}",
        r.timeline.len()
    );
    // Snapshots are chronological and internally consistent.
    assert!(r.timeline.windows(2).all(|w| w[0].at <= w[1].at));
    for s in &r.timeline {
        assert_eq!(s.counts.iter().sum::<u64>(), 40);
        assert!(s.power.get() > 0.0);
    }
    // No timeline unless asked.
    let quiet = run(PolicyKind::ZombieStack, &trace);
    assert!(quiet.timeline.is_empty());
}

#[test]
fn oasis_parks_idle_memory() {
    let trace = small_trace(1.0);
    let r = run(PolicyKind::Oasis, &trace);
    assert!(r.peak_parked > 0.0);
}

#[test]
fn invalid_configs_are_rejected() {
    let base = SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp());
    assert!(base.validate().is_ok());
    let zero_racks = SimConfig {
        racks: 0,
        ..base.clone()
    };
    assert!(zero_racks.validate().is_err());
    let no_mem = SimConfig {
        usable_mem: 0.0,
        ..base.clone()
    };
    assert!(no_mem.validate().is_err());
    let bad_gen = SimConfig {
        generations: vec![2013, 1999],
        ..base.clone()
    };
    assert!(bad_gen.validate().is_err());
    let cxl_no_cap = SimConfig {
        backend: &zombieland_core::backend::CXL_POOL,
        cxl_capacity: 0.0,
        ..base.clone()
    };
    assert!(cxl_no_cap.validate().is_err());
    // The same zero capacity is fine under rdma (never read).
    let rdma_no_cap = SimConfig {
        cxl_capacity: 0.0,
        ..base.clone()
    };
    assert!(rdma_no_cap.validate().is_ok());
    let nan_cap = SimConfig {
        cpu_fill_cap: f64::NAN,
        ..base
    };
    assert!(nan_cap.validate().is_err());
}

#[test]
fn generation_years_match_the_table() {
    // `zombieland-core` cannot depend on the trace crate, so its
    // scenario validation restates the generations table's year span;
    // this pins the two together.
    let range = zombieland_core::scenario::GENERATION_YEARS;
    let years: Vec<u16> = zombieland_trace::generations::GENERATIONS
        .iter()
        .map(|g| g.year)
        .collect();
    assert_eq!(years.first(), Some(range.start()));
    assert_eq!(years.last(), Some(range.end()));
    for year in range {
        assert!(
            zombieland_trace::generations::by_year(year).is_some(),
            "scenario accepts {year} but the table has no row for it"
        );
        assert!(
            zombieland_energy::generation_power(year).is_some(),
            "no power model for generation {year}"
        );
    }
}

#[test]
fn heterogeneous_fleets_are_deterministic_across_shards() {
    let trace = small_trace(1.2);
    let hetero = |shards| {
        simulate(
            &trace,
            &SimConfig {
                racks: 8,
                shards,
                generations: vec![2005, 2009, 2013],
                ..SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp())
            },
        )
    };
    let serial = hetero(1);
    let sharded = hetero(8);
    assert_eq!(serial, sharded, "hetero fleet must not depend on shards");
    assert_eq!(serial.dropped, 0);
    // A mixed fleet prices differently from the uniform reference.
    let uniform = simulate(
        &trace,
        &SimConfig {
            racks: 8,
            shards: 1,
            ..SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp())
        },
    );
    assert_ne!(
        serial.energy.get(),
        uniform.energy.get(),
        "generation mix moved no energy"
    );
    assert!(
        serial.energy.get() < uniform.energy.get(),
        "older generations draw less: {} vs {}",
        serial.energy.get(),
        uniform.energy.get()
    );
}

#[test]
fn cxl_backend_runs_without_zombies_or_host_lending() {
    let trace = small_trace(1.5);
    let cxl = simulate(
        &trace,
        &SimConfig {
            backend: &zombieland_core::backend::CXL_POOL,
            cxl_capacity: 4.0,
            racks: 4,
            ..SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp())
        },
    );
    assert_eq!(cxl.dropped, 0);
    assert_eq!(
        cxl.state_seconds[1], 0.0,
        "shared tier leaves no host in Sz"
    );
    assert!(cxl.state_seconds[2] > 0.0, "evacuated hosts sleep in S3");
    let rdma = simulate(
        &trace,
        &SimConfig {
            racks: 4,
            ..SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp())
        },
    );
    assert_ne!(cxl.energy.get(), rdma.energy.get());
}

#[test]
#[should_panic(expected = "invalid SimConfig")]
fn simulate_panics_on_invalid_config() {
    let trace = small_trace(1.0);
    let cfg = SimConfig {
        racks: 0,
        ..SimConfig::new(PolicyKind::AlwaysOn, MachineProfile::hp())
    };
    simulate(&trace, &cfg);
}
