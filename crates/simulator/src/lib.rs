//! Datacenter-scale energy simulation (§6.6.2, Fig. 10).
//!
//! Replays a (synthetic) Google-style cluster trace against four resource
//! management policies and integrates the fleet's energy:
//!
//! - **AlwaysOn** — no power management; the baseline that "% energy
//!   saving" is measured against.
//! - **Neat** — vanilla OpenStack Neat consolidation: VMs pack onto hosts
//!   that can take their *full* booking; emptied hosts suspend to S3.
//! - **Oasis** — Neat plus partial migration of idle VMs: their working
//!   set moves, the rest of their memory parks on dedicated memory
//!   servers drawing 40 % of a regular server.
//! - **ZombieStack** — the paper: placement under the 50 % local rule,
//!   consolidation under the 30 %-of-WSS rule, emptied hosts enter Sz
//!   and their memory becomes the rack-wide remote pool.
//!
//! The simulator is deliberately *not* page-accurate (that is
//! `zombieland-hypervisor`'s job): it tracks booked/used resources,
//! host power states and the remote pool, which is the granularity the
//! energy result depends on.

use core::cmp::Ordering;
use std::collections::BTreeSet;

use zombieland_acpi::SleepState;
use zombieland_cloud::consolidation::{ConsolidationMode, Neat};
use zombieland_cloud::oasis::OasisConfig;
use zombieland_energy::curve::power_fraction;
use zombieland_energy::MachineProfile;
use zombieland_simcore::{EventQueue, Joules, SimDuration, SimTime, Watts};
use zombieland_trace::google::{ClusterTrace, EventKind};

/// The resource-management policy a run simulates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyKind {
    /// No power management (baseline).
    AlwaysOn,
    /// Vanilla Neat consolidation (S3 suspends).
    Neat,
    /// Oasis hybrid consolidation (partial migration + memory servers).
    Oasis,
    /// The paper's system.
    ZombieStack,
}

impl PolicyKind {
    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::AlwaysOn => "AlwaysOn",
            PolicyKind::Neat => "Neat",
            PolicyKind::Oasis => "Oasis",
            PolicyKind::ZombieStack => "ZombieStack",
        }
    }
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Policy under test.
    pub policy: PolicyKind,
    /// Machine energy profile (HP or Dell, Table 3).
    pub profile: MachineProfile,
    /// Consolidation period (OpenStack Neat defaults to minutes).
    pub consolidation_interval: SimDuration,
    /// Fraction of a host's memory usable by VMs (the rest is the
    /// hypervisor/system reserve).
    pub usable_mem: f64,
    /// Maximum booked-CPU fill during consolidation packing.
    pub cpu_fill_cap: f64,
    /// Demote a zombie to S3 when the free pool exceeds this many
    /// server-equivalents of memory (§4.4; `None` disables).
    pub sz_demote_threshold: Option<f64>,
    /// Charge suspend/wake transitions their real latency at full power
    /// (a wake burns ~4 s of peak draw; naive consolidators that thrash
    /// pay for it).
    pub transition_costs: bool,
    /// Number of racks the fleet is split into. The remote-memory pool is
    /// **rack-local**, as in the paper: a VM's remote share must come
    /// from zombies in its own rack. `1` = one giant rack.
    pub racks: u32,
    /// Record a fleet snapshot at this period into
    /// [`SimReport::timeline`] (`None` = no timeline).
    pub sample_interval: Option<SimDuration>,
}

impl SimConfig {
    /// The paper's setup for a given policy and machine.
    pub fn new(policy: PolicyKind, profile: MachineProfile) -> Self {
        SimConfig {
            policy,
            profile,
            consolidation_interval: SimDuration::from_mins(5),
            usable_mem: 0.94,
            cpu_fill_cap: 0.90,
            sz_demote_threshold: Some(1.0),
            transition_costs: true,
            racks: 1,
            sample_interval: None,
        }
    }
}

/// Outcome of one simulation run.
///
/// `PartialEq` is derived so tests can assert the runner's bit-for-bit
/// determinism contract: the same trace, config and seed must produce
/// an *identical* report at any worker count.
#[derive(Clone, PartialEq, Debug)]
pub struct SimReport {
    /// Policy simulated.
    pub policy: PolicyKind,
    /// Fleet energy over the trace.
    pub energy: Joules,
    /// VM migrations performed.
    pub migrations: u64,
    /// Host wake-ups (S3 or Sz exits).
    pub wakeups: u64,
    /// Arrivals that could not be placed even after wake-ups (should be
    /// ~0 on feasible traces).
    pub dropped: u64,
    /// Arrivals placed by overcommitting an active host as a last
    /// resort.
    pub overcommitted: u64,
    /// Integral of host-count in each state, in host-seconds
    /// (active, zombie, sleeping).
    pub state_seconds: [f64; 3],
    /// Peak memory parked on Oasis memory servers (server-equivalents).
    pub peak_parked: f64,
    /// Periodic fleet snapshots (empty unless
    /// [`SimConfig::sample_interval`] is set).
    pub timeline: Vec<TimelineSample>,
}

/// One fleet snapshot.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TimelineSample {
    /// Snapshot time.
    pub at: SimTime,
    /// Hosts active / zombie / sleeping.
    pub counts: [u64; 3],
    /// Fleet IT power at that instant.
    pub power: Watts,
}

impl SimReport {
    /// Energy saving versus a baseline run, in percent.
    ///
    /// A zero-energy baseline (empty or zero-duration trace) reports
    /// zero savings rather than letting `0/0 = NaN` leak into tables.
    pub fn savings_pct(&self, baseline: &SimReport) -> f64 {
        if baseline.energy.get() == 0.0 {
            return 0.0;
        }
        (1.0 - self.energy / baseline.energy) * 100.0
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum HState {
    Active,
    Zombie,
    Sleeping,
}

#[derive(Clone, Debug)]
struct Host {
    state: HState,
    rack: u32,
    cpu_booked: f64,
    cpu_used: f64,
    mem_local: f64,
    /// Remote-pool memory allocated *from* this host (only when zombie).
    remote_allocated: f64,
    vms: Vec<usize>,
}

#[derive(Clone, Debug)]
struct VmState {
    host: usize,
    local_mem: f64,
    /// Remote-pool memory this VM holds (server-equivalents).
    remote: f64,
    parked: f64,
}

/// Ticks a freshly woken host is exempt from consolidation, damping
/// wake/suspend churn.
const WAKE_COOLDOWN_TICKS: u32 = 3;

/// Bookkeeping for one in-flight (two-phase) consolidation move.
#[derive(Clone, Copy, Debug)]
struct PendingMove {
    task: usize,
    source: usize,
    target: usize,
    old_local: f64,
    old_remote: f64,
    new_local: f64,
    taken: f64,
}

struct Dc {
    cfg: SimConfig,
    hosts: Vec<Host>,
    cooldown: Vec<u32>,
    vms: Vec<Option<VmState>>,
    parked_mem: f64,
    total_power: Watts,
    state_counts: [u64; 3],
    energy: Joules,
    last: SimTime,
    report: SimReport,
    neat: Neat,
    oasis: OasisConfig,
    /// Index sets by host state, maintained by [`Dc::update_host`] so the
    /// hot paths (placement, wake, pool carving) never scan the full
    /// fleet. Iteration order is ascending host index — the same order
    /// the old full scans visited — so every float sum and every
    /// tie-break is bit-for-bit identical to the O(hosts) versions.
    active: BTreeSet<usize>,
    /// Active hosts keyed by `(cpu_booked, index)`, most-booked first
    /// with ties toward the lower index — exactly the stacking
    /// preference order, so placement scans stop at the *first* fitting
    /// entry instead of ranking the whole fleet. The key is the stored
    /// bits of `cpu_booked` at index time; [`Dc::update_host`]
    /// repositions entries whenever the value changes.
    active_by_booked: Vec<(f64, usize)>,
    /// Sleeping and zombie hosts (the wake candidates).
    nonactive: BTreeSet<usize>,
    /// Zombie hosts per rack (the rack-local remote pool's lenders).
    zombies_by_rack: Vec<BTreeSet<usize>>,
    /// Persistent sort buffer for the consolidation order (reused every
    /// tick instead of a fresh allocation).
    order_buf: Vec<usize>,
    /// Persistent buffer for the resident-VM snapshot in
    /// [`Dc::try_evacuate`].
    evac_buf: Vec<usize>,
    /// Per-rack free-pool snapshot taken at the start of each placement
    /// scan, so `fits` stops re-summing the pool per candidate host.
    pool_buf: Vec<f64>,
    /// Whether [`Dc::validate`] runs after each consolidation round:
    /// debug builds by default, or `ZL_VALIDATE=1` in release.
    validate_on: bool,
}

/// Whether the O(hosts × vms) invariant sweep runs: always in debug
/// builds (unless `ZL_VALIDATE=0`), and only on `ZL_VALIDATE=1` in
/// release — release runs skip the sweep entirely.
fn validate_enabled() -> bool {
    match std::env::var_os("ZL_VALIDATE") {
        Some(v) if v == "1" => true,
        Some(v) if v == "0" => false,
        _ => cfg!(debug_assertions),
    }
}

/// What the simulation loop schedules: a trace event (by index) or a
/// consolidation tick. Trace events are scheduled first, so the queue's
/// FIFO tie-break fires them before a tick at the same instant — exactly
/// the order the old two-pointer merge used.
enum SimEvent {
    Task(usize),
    Tick,
}

thread_local! {
    /// Recycled event-queue storage. Grid experiments run tens of
    /// simulations per worker thread; reusing one heap allocation per
    /// thread keeps N workers from hammering the global allocator with
    /// multi-megabyte queue builds. [`EventQueue::clear`] resets the
    /// FIFO tie-break counter, so a recycled queue is observably
    /// identical to a fresh one.
    static QUEUE_POOL: std::cell::RefCell<Option<EventQueue<SimEvent>>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs one policy over a trace.
pub fn simulate(trace: &ClusterTrace, cfg: &SimConfig) -> SimReport {
    let n = trace.config().servers as usize;
    let mode = match cfg.policy {
        PolicyKind::ZombieStack => ConsolidationMode::ZombieStack,
        _ => ConsolidationMode::VanillaNeat,
    };
    let mut dc = Dc {
        hosts: (0..n)
            .map(|i| Host {
                state: HState::Active,
                rack: i as u32 % cfg.racks.max(1),
                cpu_booked: 0.0,
                cpu_used: 0.0,
                mem_local: 0.0,
                remote_allocated: 0.0,
                vms: Vec::new(),
            })
            .collect(),
        cooldown: vec![0; n],
        vms: vec![None; trace.tasks().len()],
        parked_mem: 0.0,
        total_power: Watts::ZERO,
        energy: Joules::ZERO,
        last: SimTime::ZERO,
        report: SimReport {
            policy: cfg.policy,
            energy: Joules::ZERO,
            migrations: 0,
            wakeups: 0,
            dropped: 0,
            overcommitted: 0,
            state_seconds: [0.0; 3],
            peak_parked: 0.0,
            timeline: Vec::new(),
        },
        neat: Neat::new(mode),
        oasis: OasisConfig::default(),
        active: (0..n).collect(),
        active_by_booked: (0..n).map(|i| (0.0, i)).collect(),
        nonactive: BTreeSet::new(),
        zombies_by_rack: vec![BTreeSet::new(); cfg.racks.max(1) as usize],
        order_buf: Vec::new(),
        evac_buf: Vec::new(),
        pool_buf: Vec::new(),
        validate_on: validate_enabled(),
        cfg: cfg.clone(),
        state_counts: [n as u64, 0, 0],
    };
    // Initial fleet power: everything on and idle.
    dc.total_power = dc.host_power(0) * n as f64;

    let events = trace.events();
    let end = SimTime::ZERO + trace.config().duration;
    // Every trace event plus the single in-flight consolidation tick:
    // sized up front so the heap never reallocates mid-run. The queue
    // itself comes from the per-thread pool when a previous run on this
    // worker left one behind.
    let mut queue: EventQueue<SimEvent> = QUEUE_POOL
        .with(|p| p.borrow_mut().take())
        .unwrap_or_default();
    queue.clear();
    queue.reserve(events.len() + 1);
    for (i, e) in events.iter().enumerate() {
        queue.schedule(e.0, SimEvent::Task(i));
    }
    let first_tick = SimTime::ZERO + cfg.consolidation_interval;
    if first_tick <= end {
        queue.schedule(first_tick, SimEvent::Tick);
    }
    let mut next_sample = SimTime::ZERO;
    while let Some((now, ev)) = queue.pop() {
        dc.advance(now);
        match ev {
            SimEvent::Tick => {
                if cfg.policy != PolicyKind::AlwaysOn {
                    dc.consolidate(trace);
                }
                if let Some(every) = cfg.sample_interval {
                    if next_sample <= now {
                        dc.report.timeline.push(TimelineSample {
                            at: now,
                            counts: dc.state_counts,
                            power: dc.total_power,
                        });
                        let mw = (dc.total_power.get() * 1000.0).round() as u64;
                        zombieland_obs::sink::gauge_set("sim.power_mw", mw);
                        zombieland_obs::trace_event!(now, "simulator", "sample",
                            "active" => dc.state_counts[0],
                            "zombie" => dc.state_counts[1],
                            "sleeping" => dc.state_counts[2],
                            "power_mw" => mw);
                        next_sample = now + every;
                    }
                }
                let next = now + cfg.consolidation_interval;
                if next <= end {
                    queue.schedule(next, SimEvent::Tick);
                }
            }
            SimEvent::Task(i) => {
                let (_, kind, task) = events[i];
                match kind {
                    EventKind::Arrive => dc.arrive(trace, task),
                    EventKind::Depart => dc.depart(trace, task),
                }
            }
        }
    }
    // The loop drained the queue; park its storage for the next run on
    // this thread.
    QUEUE_POOL.with(|p| *p.borrow_mut() = Some(queue));
    dc.advance(end);
    dc.report.energy = dc.energy;
    if zombieland_obs::sink::metrics_enabled() {
        let r = &dc.report;
        zombieland_obs::sink::gauge_set("sim.energy_mj", (r.energy.get() * 1000.0).round() as u64);
        zombieland_obs::sink::counter_add("sim.runs", 1);
        zombieland_obs::trace_event!(dc.last, "simulator", "run_done",
            "policy" => r.policy.name(),
            "energy_mj" => (r.energy.get() * 1000.0).round() as u64,
            "migrations" => r.migrations,
            "wakeups" => r.wakeups,
            "dropped" => r.dropped,
            "overcommitted" => r.overcommitted);
    }
    dc.report
}

impl Dc {
    fn profile(&self) -> &MachineProfile {
        &self.cfg.profile
    }

    /// Current power of one host given its state/utilization, as a Watts
    /// value (index arg is a convenience for the all-idle initial state).
    fn host_power(&self, host: usize) -> Watts {
        let h = self.hosts.get(host);
        let p = self.profile();
        match h.map(|h| h.state).unwrap_or(HState::Active) {
            HState::Active => {
                let util = h.map(|h| h.cpu_used).unwrap_or(0.0).clamp(0.0, 1.0);
                p.max_power() * power_fraction(p, util)
            }
            HState::Zombie => p.max_power() * p.sz_fraction(),
            HState::Sleeping => p.max_power() * p.state_fraction(SleepState::S3),
        }
    }

    /// Integrates energy up to `now` and advances the clock.
    fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last);
        if dt > SimDuration::ZERO {
            let parked_power =
                self.profile().max_power() * self.oasis.memory_server_power(self.parked_mem);
            self.energy += (self.total_power + parked_power).over(dt);
            let secs = dt.as_secs_f64();
            for (i, &count) in self.state_counts.iter().enumerate() {
                self.report.state_seconds[i] += count as f64 * secs;
            }
            self.last = now;
        } else if now > self.last {
            self.last = now;
        }
    }

    /// Applies a mutation to host `h`, keeping the fleet power total
    /// consistent.
    fn update_host(&mut self, h: usize, f: impl FnOnce(&mut Host)) {
        let before = self.host_power(h);
        let state_before = self.hosts[h].state;
        let booked_before = self.hosts[h].cpu_booked;
        f(&mut self.hosts[h]);
        let after = self.host_power(h);
        let state_after = self.hosts[h].state;
        let booked_after = self.hosts[h].cpu_booked;
        if state_before != state_after {
            self.state_counts[state_index(state_before)] -= 1;
            self.state_counts[state_index(state_after)] += 1;
            self.index_host(h, state_before, state_after, booked_before, booked_after);
        } else if state_after == HState::Active
            && booked_after.total_cmp(&booked_before) != Ordering::Equal
        {
            // total_cmp (not `!=`) so a -0.0/+0.0 flip still repositions
            // and the stored key always matches the host's exact bits.
            self.reposition_booked(h, booked_before, booked_after);
        }
        self.total_power =
            Watts::new((self.total_power.get() - before.get() + after.get()).max(0.0));
    }

    /// The ordering of [`Dc::active_by_booked`]: most-booked first, ties
    /// toward the lower host index (the stacking preference order).
    fn booked_order(a: &(f64, usize), b: &(f64, usize)) -> Ordering {
        b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
    }

    /// Re-slots `h` in the booked-ordered list after its `cpu_booked`
    /// moved from `old` to `new`.
    fn reposition_booked(&mut self, h: usize, old: f64, new: f64) {
        let pos = self
            .active_by_booked
            .binary_search_by(|e| Self::booked_order(e, &(old, h)))
            .expect("active host indexed under its old booked key");
        self.active_by_booked.remove(pos);
        let ins = self
            .active_by_booked
            .partition_point(|e| Self::booked_order(e, &(new, h)) == Ordering::Less);
        self.active_by_booked.insert(ins, (new, h));
    }

    /// Moves `h` between the per-state index sets on a state change.
    fn index_host(&mut self, h: usize, from: HState, to: HState, booked_old: f64, booked_new: f64) {
        let rack = self.hosts[h].rack as usize;
        match from {
            HState::Active => {
                self.active.remove(&h);
                let pos = self
                    .active_by_booked
                    .binary_search_by(|e| Self::booked_order(e, &(booked_old, h)))
                    .expect("active host indexed under its old booked key");
                self.active_by_booked.remove(pos);
            }
            HState::Zombie => {
                self.nonactive.remove(&h);
                self.zombies_by_rack[rack].remove(&h);
            }
            HState::Sleeping => {
                self.nonactive.remove(&h);
            }
        }
        match to {
            HState::Active => {
                self.active.insert(h);
                let ins = self
                    .active_by_booked
                    .partition_point(|e| Self::booked_order(e, &(booked_new, h)) == Ordering::Less);
                self.active_by_booked.insert(ins, (booked_new, h));
            }
            HState::Zombie => {
                self.nonactive.insert(h);
                self.zombies_by_rack[rack].insert(h);
            }
            HState::Sleeping => {
                self.nonactive.insert(h);
            }
        }
    }

    /// Snapshots every rack's free pool into [`Dc::pool_buf`] ahead of a
    /// placement scan. Under non-pool policies the snapshot is all zeros
    /// (never read). The scan itself does not mutate pool state, so one
    /// snapshot serves every candidate host — this is what turns the old
    /// O(hosts²) placement into O(active + zombies).
    fn snapshot_pools(&mut self) {
        let mut buf = std::mem::take(&mut self.pool_buf);
        buf.clear();
        let racks = self.cfg.racks.max(1);
        if self.cfg.policy == PolicyKind::ZombieStack {
            buf.extend((0..racks).map(|r| self.pool_free(r)));
        } else {
            buf.resize(racks as usize, 0.0);
        }
        self.pool_buf = buf;
    }

    fn usable_mem(&self) -> f64 {
        self.cfg.usable_mem
    }

    /// Free remote-pool memory in one rack (zombie hosts only — the pool
    /// is rack-local as in the paper). Sums over the rack's zombie index
    /// set in ascending host order, the same order (and therefore the
    /// same float result) as the old full-fleet filter scan.
    fn pool_free(&self, rack: u32) -> f64 {
        self.zombies_by_rack[rack as usize]
            .iter()
            .map(|&i| (self.usable_mem() - self.hosts[i].remote_allocated).max(0.0))
            .sum()
    }

    /// Free pool across every rack (reporting / demotion policy).
    fn pool_free_total(&self) -> f64 {
        (0..self.cfg.racks.max(1)).map(|r| self.pool_free(r)).sum()
    }

    /// Carves `amount` of remote memory from one rack's zombie hosts
    /// (most-free first). Returns how much was actually taken.
    fn take_remote(&mut self, rack: u32, mut amount: f64) -> f64 {
        let mut taken = 0.0;
        while amount > 1e-9 {
            // Most-free zombie; `>=` keeps the *last* maximum among ties,
            // matching the old full-scan `max_by`.
            let mut best: Option<(usize, f64)> = None;
            for &i in &self.zombies_by_rack[rack as usize] {
                let free = (self.usable_mem() - self.hosts[i].remote_allocated).max(0.0);
                if best.is_none_or(|(_, b)| free >= b) {
                    best = Some((i, free));
                }
            }
            let Some((idx, free)) = best else {
                break;
            };
            if free <= 1e-9 {
                break;
            }
            let take = free.min(amount);
            self.hosts[idx].remote_allocated += take;
            taken += take;
            amount -= take;
        }
        taken
    }

    /// Returns `amount` of remote memory to one rack's pool (drained from
    /// the most-loaded zombies first, so lightly-used zombies empty out
    /// and become demotable to S3).
    fn give_back_remote(&mut self, rack: u32, mut amount: f64) {
        while amount > 1e-9 {
            // Most-loaded zombie; `>=` keeps the last maximum among ties,
            // matching the old full-scan `max_by`.
            let mut best: Option<(usize, f64)> = None;
            for &i in &self.zombies_by_rack[rack as usize] {
                let ra = self.hosts[i].remote_allocated;
                if ra > 1e-9 && best.is_none_or(|(_, b)| ra >= b) {
                    best = Some((i, ra));
                }
            }
            let Some((idx, _)) = best else {
                break;
            };
            let back = self.hosts[idx].remote_allocated.min(amount);
            self.hosts[idx].remote_allocated -= back;
            amount -= back;
        }
    }

    /// Whether `host` can take the task under the policy's placement
    /// rule; returns the local share it would use. `pool` is the free
    /// remote pool of the host's rack (snapshot or fresh — the caller
    /// owns that choice; scans pass the per-scan snapshot).
    fn fits(&self, host: usize, cpu: f64, cpu_used: f64, mem: f64, pool: f64) -> Option<f64> {
        let h = &self.hosts[host];
        if h.state != HState::Active {
            return None;
        }
        let free_local = (self.usable_mem() - h.mem_local).max(0.0);
        match self.cfg.policy {
            PolicyKind::ZombieStack => {
                // Usage-aware CPU admission with a bounded booking
                // overcommit, mirroring the consolidation rule, so that
                // arrivals can land on usage-packed hosts instead of
                // waking zombies.
                if h.cpu_used + cpu_used > 0.85 + 1e-9 || h.cpu_booked + cpu > 1.3 + 1e-9 {
                    return None;
                }
                let local = mem.min(free_local);
                if local + 1e-9 < 0.5 * mem {
                    return None;
                }
                if mem - local > pool + 1e-9 {
                    return None;
                }
                Some(local)
            }
            _ => {
                if h.cpu_booked + cpu > 1.0 + 1e-9 || free_local + 1e-9 < mem {
                    None
                } else {
                    Some(mem)
                }
            }
        }
    }

    /// Stacking choice: the fittable active host with the highest booked
    /// CPU (ties to the lowest index, as the old ascending full scan
    /// resolved them). [`Dc::active_by_booked`] *is* that preference
    /// order, so the first fitting entry is the answer — no ranking pass.
    /// One pool snapshot serves the whole scan.
    fn pick_host(&mut self, cpu: f64, cpu_used: f64, mem: f64) -> Option<usize> {
        self.snapshot_pools();
        for &(_, i) in &self.active_by_booked {
            let pool = self.pool_buf[self.hosts[i].rack as usize];
            if self.fits(i, cpu, cpu_used, mem, pool).is_some() {
                return Some(i);
            }
        }
        None
    }

    /// Wakes a host per policy preference. Returns its index.
    fn wake_one(&mut self) -> Option<usize> {
        let pick = match self.cfg.policy {
            PolicyKind::ZombieStack => {
                // Least-lending zombie; strict `<` keeps the *first*
                // minimum among ties, matching the old full-scan
                // `min_by` over ascending host indices.
                let mut best: Option<(usize, f64)> = None;
                for &i in &self.nonactive {
                    if self.hosts[i].state != HState::Zombie {
                        continue;
                    }
                    let ra = self.hosts[i].remote_allocated;
                    if best.is_none_or(|(_, b)| ra < b) {
                        best = Some((i, ra));
                    }
                }
                best.map(|(i, _)| i).or_else(|| self.find_sleeping())
            }
            _ => self.find_sleeping(),
        }?;
        // A waking zombie reclaims its memory: re-place its allocations
        // on its rack's *other* zombies (so reactivate first — a zombie
        // would happily re-absorb its own shares), and shed whatever the
        // pool cannot hold onto the owning VMs' local backups, exactly as
        // the rack-level US_reclaim fallback does.
        let stranded = self.hosts[pick].remote_allocated;
        let rack = self.hosts[pick].rack;
        self.hosts[pick].remote_allocated = 0.0;
        self.cooldown[pick] = WAKE_COOLDOWN_TICKS;
        let waking_from = self.hosts[pick].state;
        self.update_host(pick, |h| {
            h.state = HState::Active;
        });
        self.charge_transition(waking_from, HState::Active);
        if stranded > 1e-9 {
            let placed = self.take_remote(rack, stranded);
            self.shed_vm_remote(rack, stranded - placed);
        }
        self.report.wakeups += 1;
        zombieland_obs::sink::counter_add("sim.wakeups", 1);
        zombieland_obs::trace_event!(self.last, "simulator", "wake", "host" => pick);
        Some(pick)
    }

    /// Charges the energy of one power-state transition: the platform
    /// runs its enter/exit sequence at near-full draw for the latency the
    /// firmware model reports.
    fn charge_transition(&mut self, from: HState, to: HState) {
        if !self.cfg.transition_costs {
            return;
        }
        // Latencies from the firmware model: S3/Sz enter ~3 s, exit ~4 s.
        let latency = match (from, to) {
            (HState::Active, _) => SimDuration::from_millis(2_950),
            (_, HState::Active) => SimDuration::from_millis(3_800),
            _ => SimDuration::ZERO,
        };
        if latency > SimDuration::ZERO {
            zombieland_obs::sink::counter_add("sim.transitions", 1);
            zombieland_obs::sink::hist_record("sim.transition_ns", latency.as_nanos());
        }
        self.energy += (self.profile().max_power() * 0.9).over(latency);
    }

    /// Reduces VMs' remote shares in `rack` by `amount`: their cold pages
    /// are now served from the local backups (the revocation fallback).
    fn shed_vm_remote(&mut self, rack: u32, mut amount: f64) {
        if amount <= 1e-9 {
            return;
        }
        for task in 0..self.vms.len() {
            if amount <= 1e-9 {
                break;
            }
            let Some(vm) = self.vms[task].as_mut() else {
                continue;
            };
            if vm.remote <= 1e-9 || self.hosts[vm.host].rack != rack {
                continue;
            }
            let cut = vm.remote.min(amount);
            vm.remote -= cut;
            amount -= cut;
        }
    }

    fn find_sleeping(&self) -> Option<usize> {
        // `nonactive` holds exactly the Sleeping|Zombie hosts, ordered by
        // index, so the first member is what the old `position` scan found.
        self.nonactive.first().copied()
    }

    fn arrive(&mut self, trace: &ClusterTrace, task: usize) {
        let t = &trace.tasks()[task];
        let (cpu, mem) = (t.cpu_booked, t.mem_booked);
        let host = match self.pick_host(cpu, t.cpu_used, mem) {
            Some(h) => h,
            None => {
                // Wake hosts until the VM fits; as a last resort,
                // overcommit the least-used active host (real clouds
                // queue or overcommit rather than reject booked work).
                let mut found = None;
                loop {
                    if self.wake_one().is_none() {
                        break;
                    }
                    if let Some(h) = self.pick_host(cpu, t.cpu_used, mem) {
                        found = Some(h);
                        break;
                    }
                }
                match found {
                    Some(h) => h,
                    None => {
                        // Least-used active host; strict `<` keeps the
                        // first minimum among ties like the old `min_by`
                        // over ascending indices.
                        let mut least: Option<(usize, f64)> = None;
                        for &i in &self.active {
                            let used = self.hosts[i].cpu_used;
                            if least.is_none_or(|(_, b)| used < b) {
                                least = Some((i, used));
                            }
                        }
                        let Some(h) = least.map(|(i, _)| i) else {
                            self.report.dropped += 1;
                            zombieland_obs::sink::counter_add("sim.dropped", 1);
                            zombieland_obs::trace_event!(
                                self.last, "simulator", "drop", "task" => task);
                            return;
                        };
                        self.report.overcommitted += 1;
                        zombieland_obs::sink::counter_add("sim.overcommitted", 1);
                        h
                    }
                }
            }
        };
        let pool = self.pool_free(self.hosts[host].rack);
        let local = match self.fits(host, cpu, t.cpu_used, mem, pool) {
            Some(l) => l,
            None => {
                // Overcommit fallback: take whatever local memory is left.
                let free = (self.usable_mem() - self.hosts[host].mem_local).max(0.0);
                mem.min(free)
            }
        };
        let remote = (mem - local).max(0.0);
        let rack = self.hosts[host].rack;
        let taken = if remote > 1e-9 {
            self.take_remote(rack, remote)
        } else {
            0.0
        };
        let used = t.cpu_used;
        self.update_host(host, |h| {
            h.cpu_booked += cpu;
            h.cpu_used += used;
            h.mem_local += local;
            h.vms.push(task);
        });
        self.vms[task] = Some(VmState {
            host,
            local_mem: local,
            remote: taken,
            parked: 0.0,
        });
        zombieland_obs::sink::counter_add("sim.arrivals", 1);
        zombieland_obs::trace_event!(self.last, "simulator", "arrive",
            "task" => task, "host" => host);
    }

    fn depart(&mut self, trace: &ClusterTrace, task: usize) {
        let Some(vm) = self.vms[task].take() else {
            return; // Dropped at arrival.
        };
        let t = &trace.tasks()[task];
        let (cpu, used, local) = (t.cpu_booked, t.cpu_used, vm.local_mem);
        self.update_host(vm.host, |h| {
            h.cpu_booked = (h.cpu_booked - cpu).max(0.0);
            h.cpu_used = (h.cpu_used - used).max(0.0);
            h.mem_local = (h.mem_local - local).max(0.0);
            h.vms.retain(|&v| v != task);
        });
        let rack = self.hosts[vm.host].rack;
        self.give_back_remote(rack, vm.remote);
        self.parked_mem = (self.parked_mem - vm.parked).max(0.0);
        zombieland_obs::sink::counter_add("sim.departures", 1);
        zombieland_obs::trace_event!(self.last, "simulator", "depart",
            "task" => task, "host" => vm.host);
    }

    /// Invariant sweep: VM lists, booked sums, pool accounting and the
    /// incremental index sets all agree. O(hosts × vms), so it runs only
    /// when [`validate_enabled`] says so (debug builds by default,
    /// `ZL_VALIDATE=1` opts release builds in).
    fn validate(&self) {
        let mut host_vms = 0usize;
        for (i, h) in self.hosts.iter().enumerate() {
            host_vms += h.vms.len();
            for &t in &h.vms {
                assert_eq!(
                    self.vms[t].as_ref().map(|v| v.host),
                    Some(i),
                    "vm {t} listed on host {i} but placed elsewhere"
                );
            }
            assert!(h.cpu_booked >= -1e-6 && h.mem_local >= -1e-6);
            if h.state != HState::Zombie {
                assert!(
                    h.remote_allocated <= 1e-6,
                    "non-zombie lends: host {i} {:?} holds {}",
                    h.state,
                    h.remote_allocated
                );
            }
            // The index sets mirror host state exactly.
            assert_eq!(
                self.active.contains(&i),
                h.state == HState::Active,
                "host {i}: active-set membership disagrees with {:?}",
                h.state
            );
            assert_eq!(
                self.nonactive.contains(&i),
                h.state != HState::Active,
                "host {i}: nonactive-set membership disagrees with {:?}",
                h.state
            );
            assert_eq!(
                self.zombies_by_rack[h.rack as usize].contains(&i),
                h.state == HState::Zombie,
                "host {i}: rack {} zombie-set membership disagrees with {:?}",
                h.rack,
                h.state
            );
        }
        assert_eq!(
            self.active_by_booked.len(),
            self.active.len(),
            "booked-ordered list covers exactly the active hosts"
        );
        for w in self.active_by_booked.windows(2) {
            assert_eq!(
                Self::booked_order(&w[0], &w[1]),
                Ordering::Less,
                "booked-ordered list stays strictly sorted"
            );
        }
        for &(booked, i) in &self.active_by_booked {
            assert_eq!(
                booked.to_bits(),
                self.hosts[i].cpu_booked.to_bits(),
                "host {i}: indexed booked key matches the live value"
            );
        }
        let indexed: usize = self.zombies_by_rack.iter().map(|s| s.len()).sum();
        let zombies = self
            .hosts
            .iter()
            .filter(|h| h.state == HState::Zombie)
            .count();
        assert_eq!(indexed, zombies, "zombie index covers every zombie once");
        let live = self.vms.iter().filter(|v| v.is_some()).count();
        assert_eq!(host_vms, live, "every live VM is on exactly one host");
        let vm_remote: f64 = self.vms.iter().flatten().map(|v| v.remote).sum();
        let host_remote: f64 = self.hosts.iter().map(|h| h.remote_allocated).sum();
        assert!(
            (vm_remote - host_remote).abs() < 1e-3,
            "pool accounting: vms {vm_remote} vs hosts {host_remote}"
        );
    }

    /// One consolidation round.
    fn consolidate(&mut self, trace: &ClusterTrace) {
        // Oasis first parks idle VMs' cold memory, shrinking footprints.
        if self.cfg.policy == PolicyKind::Oasis {
            self.oasis_park(trace);
        }

        for c in &mut self.cooldown {
            *c = c.saturating_sub(1);
        }
        // Underloaded hosts, least loaded first. The candidate list comes
        // from the active index set (ascending, as the old full scan
        // iterated) and lives in a persistent buffer so consolidation
        // ticks stop allocating.
        let mut order = std::mem::take(&mut self.order_buf);
        order.clear();
        order.extend(self.active.iter().copied().filter(|&i| {
            self.cooldown[i] == 0 && self.hosts[i].cpu_used < self.neat.underload_threshold
        }));
        // The comparator is a total order (index tie-break), so the
        // unstable sort is deterministic.
        order.sort_unstable_by(|&a, &b| {
            self.hosts[a]
                .cpu_used
                .total_cmp(&self.hosts[b].cpu_used)
                .then(a.cmp(&b))
        });

        for &host in &order {
            self.try_evacuate(trace, host);
        }
        self.order_buf = order;

        if self.validate_on {
            self.validate();
        }

        // §4.4: "If the global-mem-ctr holds huge amounts of free memory
        // (e.g. more than the total memory of a rack server), the cloud
        // manager may decide to transition zombie servers to S3." Only
        // zombies serving nothing are demoted (give_back_remote drains
        // the least-loaded ones toward zero), and generous headroom stays
        // in the pool so placements do not start waking zombies.
        if let Some(threshold) = self.cfg.sz_demote_threshold {
            while self.cfg.policy == PolicyKind::ZombieStack {
                // First (lowest-index) idle zombie, as the old full-fleet
                // `position` scan found it.
                let candidate = self.nonactive.iter().copied().find(|&i| {
                    self.hosts[i].state == HState::Zombie && self.hosts[i].remote_allocated <= 1e-9
                });
                match candidate {
                    Some(i)
                        if self.pool_free_total() - self.usable_mem()
                            >= threshold + self.usable_mem() =>
                    {
                        self.update_host(i, |h| h.state = HState::Sleeping);
                    }
                    _ => break,
                }
            }
        }
    }

    /// Tries to move every VM off `host`; on success the host suspends
    /// (Sz for ZombieStack, S3 otherwise).
    ///
    /// Under ZombieStack the host flips into Sz *before* the moves are
    /// planned, so its own memory backs the departing VMs' remote shares
    /// — without this, a memory-bound fleet can never bootstrap the
    /// remote pool (every evacuation would need a pool that only
    /// evacuations can create).
    fn try_evacuate(&mut self, trace: &ClusterTrace, host: usize) {
        let zombie_mode = self.cfg.policy == PolicyKind::ZombieStack;
        if zombie_mode {
            self.update_host(host, |h| h.state = HState::Zombie);
        }
        // Resident VM ids go through a persistent buffer instead of a
        // fresh clone per evacuation attempt.
        let mut resident = std::mem::take(&mut self.evac_buf);
        resident.clear();
        resident.extend_from_slice(&self.hosts[host].vms);
        let mut moves: Vec<PendingMove> = Vec::with_capacity(resident.len());
        let mut ok = true;
        for &task in &resident {
            let t = &trace.tasks()[task];
            let mem = match self.cfg.policy {
                // The 30 %-of-WSS rule applies to migrations.
                PolicyKind::ZombieStack => t.mem_booked,
                _ => self.vms[task]
                    .as_ref()
                    .map_or(t.mem_booked, |v| v.local_mem),
            };
            // Highest-booked fittable target, ties to the lowest index —
            // the old `max_by(...).then(b.cmp(&a))` full scan. The
            // booked-ordered walk stops at the first fitting entry; pools
            // are re-snapshot per VM because each reserve_move shifts
            // them.
            self.snapshot_pools();
            let mut target = None;
            for &(_, i) in &self.active_by_booked {
                if i == host {
                    continue;
                }
                let pool = self.pool_buf[self.hosts[i].rack as usize];
                if self.consolidation_fits(i, t.cpu_booked, t.cpu_used, mem, t.mem_used, pool) {
                    target = Some(i);
                    break;
                }
            }
            match target {
                Some(tgt) => moves.push(self.reserve_move(trace, task, tgt)),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        self.evac_buf = resident;
        if !ok {
            // Roll back reservations; the host stays up (the aborted
            // transition never left the OS, so no energy is charged).
            for m in moves.into_iter().rev() {
                self.rollback_move(trace, m);
            }
            if zombie_mode {
                // Planning may have parked pool shares on this host (it
                // was briefly a zombie) and the give-backs may have
                // drained its peers instead. Reactivate first, then
                // migrate any residue to the peers; whatever cannot fit
                // sheds to the owning VMs' local backups.
                let stuck = self.hosts[host].remote_allocated;
                let rack = self.hosts[host].rack;
                self.hosts[host].remote_allocated = 0.0;
                self.update_host(host, |h| h.state = HState::Active);
                if stuck > 1e-9 {
                    let moved = self.take_remote(rack, stuck);
                    self.shed_vm_remote(rack, stuck - moved);
                }
            }
            return;
        }
        // Commit: detach every VM from the source.
        for m in &moves {
            let t = &trace.tasks()[m.task];
            let (cpu, used, old_local) = (t.cpu_booked, t.cpu_used, m.old_local);
            self.update_host(host, |h| {
                h.cpu_booked = (h.cpu_booked - cpu).max(0.0);
                h.cpu_used = (h.cpu_used - used).max(0.0);
                h.mem_local = (h.mem_local - old_local).max(0.0);
                h.vms.retain(|&v| v != m.task);
            });
            self.report.migrations += 1;
        }
        zombieland_obs::sink::counter_add("sim.migrations", moves.len() as u64);
        zombieland_obs::trace_event!(self.last, "simulator", "evacuate",
            "host" => host, "moves" => moves.len(),
            "to_zombie" => zombie_mode);
        if !zombie_mode {
            self.update_host(host, |h| {
                debug_assert!(h.vms.is_empty());
                h.state = HState::Sleeping;
            });
        }
        self.charge_transition(HState::Active, HState::Sleeping);
    }

    /// Books a pending move on the target host (two-phase evacuate). The
    /// source host is *not* touched yet; commit or rollback settles it.
    fn reserve_move(&mut self, trace: &ClusterTrace, task: usize, target: usize) -> PendingMove {
        let t = &trace.tasks()[task];
        let free_local = (self.usable_mem() - self.hosts[target].mem_local).max(0.0);
        let vm = self.vms[task].as_mut().expect("placed");
        let (old_local, old_remote, source) = (vm.local_mem, vm.remote, vm.host);
        let mem = t.mem_booked - vm.parked;
        let new_local = mem.min(free_local);
        vm.local_mem = new_local;
        vm.host = target;
        let (cpu, used) = (t.cpu_booked, t.cpu_used);
        self.update_host(target, |h| {
            h.cpu_booked += cpu;
            h.cpu_used += used;
            h.mem_local += new_local;
            h.vms.push(task);
        });
        // Remote shares are rack-local: return the source rack's shares
        // and take the whole new requirement from the target's rack.
        let source_rack = self.hosts[source].rack;
        let target_rack = self.hosts[target].rack;
        if old_remote > 1e-9 {
            self.give_back_remote(source_rack, old_remote);
        }
        let need = (mem - new_local).max(0.0);
        let taken = if need > 1e-9 {
            self.take_remote(target_rack, need)
        } else {
            0.0
        };
        self.vms[task].as_mut().expect("placed").remote = taken;
        PendingMove {
            task,
            source,
            target,
            old_local,
            old_remote,
            new_local,
            taken,
        }
    }

    /// Undoes a reservation.
    fn rollback_move(&mut self, trace: &ClusterTrace, m: PendingMove) {
        let t = &trace.tasks()[m.task];
        let (cpu, used, new_local) = (t.cpu_booked, t.cpu_used, m.new_local);
        self.update_host(m.target, |h| {
            h.cpu_booked = (h.cpu_booked - cpu).max(0.0);
            h.cpu_used = (h.cpu_used - used).max(0.0);
            h.mem_local = (h.mem_local - new_local).max(0.0);
            h.vms.retain(|&v| v != m.task);
        });
        if m.taken > 1e-9 {
            let rack = self.hosts[m.target].rack;
            self.give_back_remote(rack, m.taken);
        }
        // Best effort: re-take the old shares in the source rack (the
        // pool may have shifted; any shortfall surfaces as pool pressure
        // on the next placement check, never as lost accounting).
        let source_rack = self.hosts[m.source].rack;
        let retaken = if m.old_remote > 1e-9 {
            self.take_remote(source_rack, m.old_remote)
        } else {
            0.0
        };
        let vm = self.vms[m.task].as_mut().expect("placed");
        vm.host = m.source;
        vm.local_mem = m.old_local;
        vm.remote = retaken;
    }

    /// The migration feasibility check. Vanilla Neat "places a VM on a
    /// server only if the latter holds all the resources booked by the
    /// VM"; ZombieStack replaces that with the 30 %-of-WSS rule and packs
    /// by *actual* CPU usage (overload detection guards the overcommit),
    /// which is where most of its extra consolidation comes from.
    fn consolidation_fits(
        &self,
        target: usize,
        cpu_booked: f64,
        cpu_used: f64,
        mem: f64,
        wss: f64,
        pool: f64,
    ) -> bool {
        let h = &self.hosts[target];
        if h.state != HState::Active {
            return false;
        }
        let free_local = (self.usable_mem() - h.mem_local).max(0.0);
        match self.cfg.policy {
            PolicyKind::ZombieStack => {
                // Usage-based CPU packing with a bounded booking
                // overcommit.
                if h.cpu_used + cpu_used > 0.85 + 1e-9 || h.cpu_booked + cpu_booked > 1.3 + 1e-9 {
                    return false;
                }
                let local = mem.min(free_local);
                local + 1e-9 >= 0.30 * wss && (mem - local) <= pool + 1e-9
            }
            _ => {
                h.cpu_booked + cpu_booked <= self.cfg.cpu_fill_cap + 1e-9
                    && free_local + 1e-9 >= mem
            }
        }
    }

    /// Oasis: park the cold memory of idle VMs on underused hosts.
    fn oasis_park(&mut self, trace: &ClusterTrace) {
        for host in 0..self.hosts.len() {
            if self.hosts[host].state != HState::Active
                || self.hosts[host].cpu_used >= self.oasis.underload_threshold
            {
                continue;
            }
            // Index-walk the VM list in place: parking never edits
            // `vms`, so no defensive clone is needed.
            for vi in 0..self.hosts[host].vms.len() {
                let task = self.hosts[host].vms[vi];
                let t = &trace.tasks()[task];
                if t.cpu_used >= self.oasis.idle_vm_threshold {
                    continue;
                }
                let vm = self.vms[task].as_mut().expect("placed");
                if vm.parked > 0.0 {
                    continue; // Already parked.
                }
                // Partial migration: the footprint shrinks to the working
                // set; the rest parks on memory servers.
                let park = (vm.local_mem - t.mem_used).max(0.0);
                if park <= 1e-9 {
                    continue;
                }
                vm.parked = park;
                vm.local_mem -= park;
                self.parked_mem += park;
                self.report.peak_parked = self.report.peak_parked.max(self.parked_mem);
                self.update_host(host, |h| {
                    h.mem_local = (h.mem_local - park).max(0.0);
                });
            }
        }
    }
}

fn state_index(s: HState) -> usize {
    match s {
        HState::Active => 0,
        HState::Zombie => 1,
        HState::Sleeping => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zombieland_trace::TraceConfig;

    fn small_trace(ratio: f64) -> ClusterTrace {
        let mut cfg = TraceConfig::small(11);
        cfg.servers = 40;
        cfg.duration = SimDuration::from_hours(24);
        cfg.avg_utilization = 0.35;
        cfg.mem_cpu_ratio = ratio;
        ClusterTrace::generate(cfg)
    }

    fn run(policy: PolicyKind, trace: &ClusterTrace) -> SimReport {
        simulate(trace, &SimConfig::new(policy, MachineProfile::hp()))
    }

    #[test]
    fn baseline_keeps_everything_on() {
        let trace = small_trace(1.0);
        let r = run(PolicyKind::AlwaysOn, &trace);
        assert_eq!(r.migrations, 0);
        assert_eq!(r.state_seconds[1], 0.0);
        assert_eq!(r.state_seconds[2], 0.0);
        assert!(r.energy.get() > 0.0);
    }

    #[test]
    fn policies_order_as_in_figure10() {
        let trace = small_trace(1.0);
        let base = run(PolicyKind::AlwaysOn, &trace);
        let neat = run(PolicyKind::Neat, &trace);
        let oasis = run(PolicyKind::Oasis, &trace);
        let zombie = run(PolicyKind::ZombieStack, &trace);
        let (sn, so, sz) = (
            neat.savings_pct(&base),
            oasis.savings_pct(&base),
            zombie.savings_pct(&base),
        );
        assert!(sn > 5.0, "Neat saves something: {sn}");
        // Oasis ~ Neat at small scale (its memory-server cost quantizes
        // to whole servers); the paper's +4-point edge needs DC scale.
        assert!(so >= sn - 2.5, "Oasis ~ Neat: {so} vs {sn}");
        assert!(sz > sn, "ZombieStack wins: {sz} vs {sn}");
        assert_eq!(zombie.dropped, 0);
        assert!(zombie.state_seconds[1] > 0.0, "zombies existed");
    }

    #[test]
    fn memory_pressure_widens_the_gap() {
        // The paper's modified traces (mem = 2× cpu) hurt Neat much more
        // than ZombieStack.
        let original = small_trace(1.0);
        let modified = original.modified();
        let gap = |trace: &ClusterTrace| {
            let base = run(PolicyKind::AlwaysOn, trace);
            let neat = run(PolicyKind::Neat, trace).savings_pct(&base);
            let zombie = run(PolicyKind::ZombieStack, trace).savings_pct(&base);
            zombie - neat
        };
        let g_orig = gap(&original);
        let g_mod = gap(&modified);
        assert!(
            g_mod > g_orig,
            "gap widens under memory pressure: {g_orig} -> {g_mod}"
        );
    }

    #[test]
    fn nothing_dropped_on_feasible_traces() {
        let trace = small_trace(1.0);
        for p in [PolicyKind::Neat, PolicyKind::Oasis, PolicyKind::ZombieStack] {
            let r = run(p, &trace);
            assert_eq!(r.dropped, 0, "{:?}", p);
        }
    }

    #[test]
    fn rack_local_pools_constrain_but_work() {
        let trace = small_trace(1.5); // Memory-pressured: the pool matters.
        let base = run(PolicyKind::AlwaysOn, &trace);
        let global = simulate(
            &trace,
            &SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp()),
        );
        let racked = simulate(
            &trace,
            &SimConfig {
                racks: 8,
                ..SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp())
            },
        );
        assert_eq!(racked.dropped, 0);
        assert!(racked.state_seconds[1] > 0.0, "zombies per rack exist");
        // Fragmenting the pool can only cost savings, never gain much.
        assert!(
            racked.savings_pct(&base) <= global.savings_pct(&base) + 2.0,
            "racked {} vs global {}",
            racked.savings_pct(&base),
            global.savings_pct(&base)
        );
    }

    #[test]
    fn transition_costs_reduce_savings() {
        let trace = small_trace(1.0);
        let base = run(PolicyKind::AlwaysOn, &trace);
        let with = simulate(
            &trace,
            &SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp()),
        );
        let without = simulate(
            &trace,
            &SimConfig {
                transition_costs: false,
                ..SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp())
            },
        );
        assert!(with.energy.get() > without.energy.get());
        // But they stay second-order (< 5 points of savings).
        assert!(without.savings_pct(&base) - with.savings_pct(&base) < 5.0);
    }

    #[test]
    fn timeline_sampling() {
        let trace = small_trace(1.0);
        let r = simulate(
            &trace,
            &SimConfig {
                sample_interval: Some(SimDuration::from_hours(1)),
                ..SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp())
            },
        );
        assert!(
            r.timeline.len() >= 20,
            "hourly samples over a day: {}",
            r.timeline.len()
        );
        // Snapshots are chronological and internally consistent.
        assert!(r.timeline.windows(2).all(|w| w[0].at <= w[1].at));
        for s in &r.timeline {
            assert_eq!(s.counts.iter().sum::<u64>(), 40);
            assert!(s.power.get() > 0.0);
        }
        // No timeline unless asked.
        let quiet = run(PolicyKind::ZombieStack, &trace);
        assert!(quiet.timeline.is_empty());
    }

    #[test]
    fn oasis_parks_idle_memory() {
        let trace = small_trace(1.0);
        let r = run(PolicyKind::Oasis, &trace);
        assert!(r.peak_parked > 0.0);
    }
}
