//! Datacenter-scale energy simulation (§6.6.2, Fig. 10).
//!
//! Replays a (synthetic) Google-style cluster trace against pluggable
//! resource-management policies and integrates the fleet's energy. The
//! paper's evaluation ships four:
//!
//! - **AlwaysOn** — no power management; the baseline that "% energy
//!   saving" is measured against.
//! - **Neat** — vanilla OpenStack Neat consolidation: VMs pack onto hosts
//!   that can take their *full* booking; emptied hosts suspend to S3.
//! - **Oasis** — Neat plus partial migration of idle VMs: their working
//!   set moves, the rest of their memory parks on dedicated memory
//!   servers drawing 40 % of a regular server.
//! - **ZombieStack** — the paper: placement under the 50 % local rule,
//!   consolidation under the 30 %-of-WSS rule, emptied hosts enter Sz
//!   and their memory becomes the rack-wide remote pool.
//!
//! The crate splits along the policy/mechanism line:
//!
//! - [`policy`] — the [`PlacementPolicy`](policy::PlacementPolicy) /
//!   [`ConsolidationPolicy`](policy::ConsolidationPolicy) traits, their
//!   paper implementations and the static [`registry`](policy::REGISTRY)
//!   that `--policy` / `--list-policies` resolve against.
//! - [`dc`](self) *(private)* — datacenter state and mechanics: host
//!   accounting, the rack-local remote pool, two-phase evacuation.
//! - `power` *(private)* — energy integration through the
//!   [`zombieland_energy::PowerModel`] in [`SimConfig::power`].
//! - `events` *(private)* — the event loop ([`simulate`]).
//! - [`report`](SimReport) — run outcomes.
//!
//! The simulator is deliberately *not* page-accurate (that is
//! `zombieland-hypervisor`'s job): it tracks booked/used resources,
//! host power states and the remote pool, which is the granularity the
//! energy result depends on.

mod crew;
mod dc;
mod events;
pub mod policy;
mod power;
mod report;
#[cfg(test)]
mod tests;

pub use events::simulate;
pub use policy::{PolicyKind, PolicySpec};
pub use report::{SimReport, TimelineSample};

use zombieland_energy::{MachineProfile, PowerModel, TABLE3};
use zombieland_simcore::SimDuration;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Policy under test (a [`policy::REGISTRY`] entry; see
    /// [`policy::lookup`] for resolution by name).
    pub policy: &'static PolicySpec,
    /// Machine energy profile (HP or Dell, Table 3).
    pub profile: MachineProfile,
    /// Host power model pricing each state/utilization (the
    /// Table-3-calibrated [`zombieland_energy::Table3Power`] by default).
    pub power: &'static dyn PowerModel,
    /// Consolidation period (OpenStack Neat defaults to minutes).
    pub consolidation_interval: SimDuration,
    /// Fraction of a host's memory usable by VMs (the rest is the
    /// hypervisor/system reserve).
    pub usable_mem: f64,
    /// Maximum booked-CPU fill during consolidation packing.
    pub cpu_fill_cap: f64,
    /// Demote a zombie to S3 when the free pool exceeds this many
    /// server-equivalents of memory (§4.4; `None` disables).
    pub sz_demote_threshold: Option<f64>,
    /// Charge suspend/wake transitions their real latency at full power
    /// (a wake burns ~4 s of peak draw; naive consolidators that thrash
    /// pay for it).
    pub transition_costs: bool,
    /// Number of racks the fleet is split into. The remote-memory pool is
    /// **rack-local**, as in the paper: a VM's remote share must come
    /// from zombies in its own rack. `1` = one giant rack. Must be ≥ 1
    /// ([`SimConfig::validate`]).
    pub racks: u32,
    /// Number of event-loop shards the racks are partitioned into (rack
    /// `r` lives in shard `r % shards`; clamped to `racks` at use).
    /// Decision scans decompose per shard and merge deterministically,
    /// so the report is byte-identical at any value; above 1 a large
    /// fleet may run its scans on a worker crew when the
    /// [`zombieland_simcore::thread_budget`] allows. Must be ≥ 1
    /// ([`SimConfig::validate`]).
    pub shards: u32,
    /// Record a fleet snapshot at this period into
    /// [`SimReport::timeline`] (`None` = no timeline).
    pub sample_interval: Option<SimDuration>,
    /// Remote-memory backend (a [`zombieland_core::backend::REGISTRY`]
    /// entry). The default `RdmaZombie` pools suspended hosts' memory;
    /// `CxlPool` swaps in a capacity-capped always-on shared tier with
    /// its own latency/power point.
    pub backend: &'static zombieland_core::backend::BackendSpec,
    /// Per-rack capacity of the pooled tier in server-equivalents of
    /// memory; only read when the backend does not pool host memory.
    pub cxl_capacity: f64,
    /// Per-rack server-generation mix (model years from the trace
    /// crate's generations table). Host `i` of rack `r` draws its
    /// generation from this list by a seeded hash of `(r, i)`; empty =
    /// a uniform fleet of the profile's reference generation.
    pub generations: Vec<u16>,
}

impl SimConfig {
    /// The paper's setup for a given policy and machine.
    pub fn new(policy: PolicyKind, profile: MachineProfile) -> Self {
        Self::with_spec(policy.spec(), profile)
    }

    /// The paper's setup for any registered policy (including ones
    /// outside the [`PolicyKind`] enum, like the `noconsolidate` toy).
    ///
    /// Rack and shard counts come from the installed
    /// [`zombieland_core::scenario`] (defaults: one rack, one shard), so
    /// `--scenario scenarios/paper_full.toml`, `ZL_RACKS` and `--shards`
    /// reach every CLI run without threading flags through each caller.
    pub fn with_spec(policy: &'static PolicySpec, profile: MachineProfile) -> Self {
        let scenario = zombieland_core::scenario::current();
        let racks = scenario.racks.max(1);
        let backend = zombieland_core::backend::lookup(&scenario.backend)
            .unwrap_or(&zombieland_core::backend::RDMA_ZOMBIE);
        SimConfig {
            policy,
            profile,
            power: &TABLE3,
            consolidation_interval: SimDuration::from_mins(5),
            usable_mem: 0.94,
            cpu_fill_cap: 0.90,
            sz_demote_threshold: Some(1.0),
            transition_costs: true,
            racks,
            shards: scenario.shards_for(racks),
            sample_interval: None,
            backend,
            cxl_capacity: scenario.cxl_cap,
            generations: scenario.generations.clone(),
        }
    }

    /// Rejects configurations the simulation cannot run meaningfully.
    /// [`simulate`] calls this up front, so the mechanics never see a
    /// zero rack count (the old code clamped `racks.max(1)` at four
    /// separate call sites) or a non-positive memory reserve.
    pub fn validate(&self) -> Result<(), String> {
        if self.racks == 0 {
            return Err("racks must be >= 1 (the remote pool is rack-local)".into());
        }
        if self.shards == 0 {
            return Err("shards must be >= 1 (1 = the serial event loop)".into());
        }
        if !self.usable_mem.is_finite() || self.usable_mem <= 0.0 {
            return Err(format!(
                "usable_mem must be a positive fraction, got {}",
                self.usable_mem
            ));
        }
        if !self.cpu_fill_cap.is_finite() || self.cpu_fill_cap <= 0.0 {
            return Err(format!(
                "cpu_fill_cap must be positive, got {}",
                self.cpu_fill_cap
            ));
        }
        if !self.backend.backend.pools_host_memory()
            && (!self.cxl_capacity.is_finite() || self.cxl_capacity <= 0.0)
        {
            return Err(format!(
                "cxl_capacity must be positive under the {} backend, got {}",
                self.backend.key, self.cxl_capacity
            ));
        }
        for &year in &self.generations {
            if zombieland_trace::generations::by_year(year).is_none() {
                return Err(format!(
                    "unknown server generation {year}; the generations table \
                     spans 2005..=2013"
                ));
            }
        }
        Ok(())
    }
}
