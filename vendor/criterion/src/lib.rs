//! A vendored, std-only stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the few entry points the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing uses
//! `std::time::Instant` with a short calibration pass and reports the
//! best-of-batches nanoseconds per iteration — enough to compare hot
//! paths between commits, without criterion's statistics machinery.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Batches to run; the minimum per-iteration time across batches is
/// reported (the classic noise-robust estimator).
const BATCHES: u32 = 3;

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            best_ns: f64::NAN,
            iters: 0,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{name:<44} (no iterations)");
        } else {
            println!("{name:<44} {:>14.1} ns/iter ({} iters)", b.best_ns, b.iters);
        }
        self
    }
}

/// Passed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    best_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, called in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit one batch budget?
        let start = Instant::now();
        std_black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (TARGET.as_nanos() / BATCHES as u128 / one.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut best = f64::INFINITY;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..per_batch {
                std_black_box(f());
            }
            best = best.min(start.elapsed().as_nanos() as f64 / per_batch as f64);
        }
        self.best_ns = best;
        self.iters = 1 + per_batch * BATCHES as u64;
    }
}

/// Groups benchmark functions under one name, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
