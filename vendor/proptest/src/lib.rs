//! A vendored, std-only stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of proptest it actually uses: deterministic
//! random test-case generation driven by a fixed seed. There is no
//! shrinking and no persistence — a failing case panics with the
//! generated inputs in the assertion message, and re-running reproduces
//! it exactly (generation is seeded per test-function name).
//!
//! Supported surface:
//! - `proptest! { #![proptest_config(..)] #[test] fn f(x in strat) {..} }`
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//! - `prop_oneof!` (unweighted), `Just`, `any::<T>()`
//! - integer/float `Range`s, tuples (up to 4), `.prop_map`
//! - `prop::collection::vec(strategy, size_range)`

pub mod collection;
pub mod strategy;

pub use strategy::{any, BoxedStrategy, Just, Strategy};

/// Per-test configuration (case count only; the rest of proptest's knobs
/// are irrelevant without shrinking/persistence).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite quick while
        // still exercising plenty of the space (generation is seeded, so
        // coverage is identical across runs anyway).
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator handed to strategies.
///
/// SplitMix64: tiny, full-period, and plenty for test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a test name: stable per-function seeds without any global
/// state.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestRng};

    /// `prop::collection::vec(..)` etc., as in the real crate's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines `#[test]` functions that run a property over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&$strat, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (plain `assert!` here: without
/// shrinking there is nothing gentler to do than panic).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 0usize..4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            Just(99u32),
        ]) {
            prop_assert!(x == 99 || (x % 2 == 0 && x < 20));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(any::<u64>(), 1..50);
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
