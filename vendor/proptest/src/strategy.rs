//! Value-generation strategies (the deterministic core of the shim).

use core::ops::Range;

use crate::TestRng;

/// Generates values of one type from a [`TestRng`].
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic `rng -> value` function.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn Strategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

/// Uniform choice between boxed strategies (what `prop_oneof!` builds).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Always produces clones of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The full domain of a type (`any::<u64>()` style).
pub struct Any<T>(core::marker::PhantomData<T>);

/// Builds the full-domain strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(core::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_uint {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
