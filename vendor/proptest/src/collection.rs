//! Collection strategies (`prop::collection::vec`).

use core::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

/// A strategy producing `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
