//! Quickstart: the zombie state and the remote-memory data path in one
//! tour.
//!
//! Run with `cargo run --release --example quickstart`.

use zombieland::acpi::{Platform, SleepState};
use zombieland::core::manager::PoolKind;
use zombieland::core::{Rack, RackConfig};
use zombieland::simcore::Bytes;

fn main() {
    // --- 1. The Sz state on a single platform -------------------------
    println!("=== 1. Suspending a server into the zombie (Sz) state ===");
    let mut platform = Platform::sz_capable();
    let outcome = platform.suspend("zom").expect("Sz-capable board");
    println!("state: {}", platform.state());
    println!(
        "memory remotely accessible: {}",
        platform.memory_remotely_accessible()
    );
    println!("devices kept awake: {:?}", outcome.report.kept_awake());
    println!("kernel path: {}", outcome.report.call_trace.join(" -> "));
    println!("enter latency: {}\n", outcome.latency);
    platform.wake().expect("was suspended");
    assert_eq!(platform.state(), SleepState::S0);

    // --- 2. A disaggregated rack --------------------------------------
    println!("=== 2. A rack with one zombie serving memory ===");
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, zombie) = (ids[0], ids[1]);

    let z = rack.goto_zombie(zombie).expect("idle server");
    println!(
        "{zombie} lent {} buffers ({}) and entered Sz in {}",
        z.buffers.len(),
        Bytes::mib(64) * z.buffers.len() as u64,
        z.suspend_latency
    );

    // --- 3. Guaranteed RAM-Extension allocation -----------------------
    let alloc = rack
        .alloc_ext(user, Bytes::gib(2))
        .expect("admission control passes");
    println!(
        "{user} allocated {} RAM-Ext buffers (control plane: {})",
        alloc.buffers.len(),
        alloc.control
    );

    // --- 4. The data path: page out, page in --------------------------
    let (handle, out_cost) = rack.place_page(user, PoolKind::Ext).expect("slots free");
    let in_cost = rack.fetch_page(user, handle, true).expect("page exists");
    println!("page-out (one-sided RDMA write to the zombie): {out_cost}");
    println!("page-in  (one-sided RDMA read from the zombie): {in_cost}");

    // --- 5. Waking the zombie reclaims its memory ---------------------
    let wake = rack.wake(zombie, None).expect("zombie sleeps");
    println!(
        "wake: {} free buffers returned, {} revoked from users, latency {}",
        wake.reclaimed_free, wake.revoked, wake.wake_latency
    );
    println!("\nDone: the rack served memory from a CPU-dead server.");
}
