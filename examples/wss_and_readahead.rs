//! Two hypervisor mechanisms the cloud layer depends on, observed live:
//! working-set estimation (the input to the 30 % consolidation rule) and
//! swap readahead over pipelined RDMA batches.
//!
//! Run with `cargo run --release --example wss_and_readahead`.

use zombieland::core::manager::PoolKind;
use zombieland::core::{Rack, RackConfig};
use zombieland::hypervisor::engine::{self, Backing, EngineConfig};
use zombieland::simcore::Bytes;
use zombieland::workloads::{MicroBench, SparkSql};

fn rack_with_zombie() -> (Rack, zombieland::core::ServerId) {
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    rack.goto_zombie(ids[1]).expect("idle server");
    (rack, ids[0])
}

fn main() {
    let reserved = Bytes::gib(2);
    let wss = Bytes::mib(1536);

    // --- 1. WSS estimation ---------------------------------------------
    // The micro-benchmark's true hot set is 48 % of its working set; the
    // hypervisor only sees accessed bits, yet its sampled estimate lands
    // close — this number is what `Neat::fits` multiplies by 0.30.
    let (mut rack, user) = rack_with_zombie();
    rack.alloc_ext(user, Bytes::gib(1)).unwrap();
    let mut w = MicroBench::new(wss.pages(), 7);
    let cfg = EngineConfig::ram_ext(reserved, reserved);
    let stats = engine::run(
        &mut w,
        &cfg,
        Backing::Rack {
            rack: &mut rack,
            user,
            pool: PoolKind::Ext,
        },
    )
    .unwrap();
    let true_hot = (wss.pages().count() as f64 * MicroBench::HOT_FRACTION) as u64;
    println!("=== Working-set estimation (accessed-bit sampling) ===");
    println!("true hot set : {true_hot} pages");
    println!("estimated WSS: {} pages", stats.wss_estimate);
    println!(
        "consolidation would require {} pages local (30% rule)\n",
        (stats.wss_estimate as f64 * 0.3) as u64
    );

    // --- 2. Swap readahead ----------------------------------------------
    // Spark scans fault page-after-page. A readahead window turns N
    // trap+fetch round trips into one posted batch on the NIC.
    println!("=== Swap readahead on a scan-heavy workload (40% local) ===");
    for window in [0u32, 8, 32] {
        let (mut rack, user) = rack_with_zombie();
        rack.alloc_ext(user, reserved).unwrap();
        let mut w = SparkSql::new(wss.pages(), 42);
        let cfg = EngineConfig {
            readahead: window,
            ..EngineConfig::ram_ext(reserved, reserved.mul_f64(0.4))
        };
        let s = engine::run(
            &mut w,
            &cfg,
            Backing::Rack {
                rack: &mut rack,
                user,
                pool: PoolKind::Ext,
            },
        )
        .unwrap();
        println!(
            "window {window:>3}: exec {}  faults {:>7}  prefetched {:>7}  \
             fault p99 {}",
            s.exec_time,
            s.remote_faults,
            s.prefetched,
            s.fault_latency
                .quantile(0.99)
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "\nA modest window wins; enormous windows over-prefetch and evict \
         useful pages (see `cargo bench --bench ablations`)."
    );
}
