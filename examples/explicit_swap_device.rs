//! The Explicit Swap Device end to end: a guest swapping through the
//! split-driver ring onto remote RAM, then surviving the zombie's death.
//!
//! Run with `cargo run --release --example explicit_swap_device`.

use zombieland::core::{Rack, RackConfig};
use zombieland::hypervisor::splitdriver::{SplitSwapDevice, SwapRequest};
use zombieland::simcore::{Bytes, SimDuration};

fn main() {
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, zombie) = (ids[0], ids[1]);
    rack.goto_zombie(zombie).expect("idle server");

    // The cloud provisions a best-effort swap pool (GS_alloc_swap) and
    // the VM gets a memory-backed swap disk.
    let granted = rack.alloc_swap(user, Bytes::gib(1)).expect("pool has room");
    let mut dev = SplitSwapDevice::new(user, Bytes::gib(1));
    println!(
        "swap device: {:?} across {} remote buffers on {zombie}",
        Bytes::gib(1),
        granted.buffers.len()
    );

    // The guest swaps out 1024 pages (its kernel picked the victims).
    for sector in 0..1024 {
        dev.submit(SwapRequest::Out { sector }).expect("in range");
    }
    let outs = dev.process(&mut rack).expect("backend drains the ring");
    let total: SimDuration = outs.iter().map(|c| c.latency).sum();
    println!(
        "swap-out: {} pages in {} ({} per page) — each also mirrored to \
         local storage asynchronously",
        outs.len(),
        total,
        total / outs.len() as u64
    );

    // Memory pressure eases: half the pages come back.
    for sector in 0..512 {
        dev.submit(SwapRequest::In { sector }).expect("present");
    }
    let ins = dev.process(&mut rack).expect("swap-in");
    let total_in: SimDuration = ins.iter().map(|c| c.latency).sum();
    println!(
        "swap-in : {} pages in {} ({} per page, all served by the \
         CPU-dead zombie)",
        ins.len(),
        total_in,
        total_in / ins.len() as u64
    );

    // Disaster: the zombie dies. The mirror makes it a slowdown, not a
    // data loss ("the pages are still available on local storage and
    // remote-mem-mgr uses this slower path", §4.5).
    rack.crash_server(zombie).expect("known server");
    for sector in 512..1024 {
        dev.submit(SwapRequest::In { sector }).expect("present");
    }
    let after = dev.process(&mut rack).expect("slower path");
    let backup = after.iter().filter(|c| c.from_backup).count();
    let total_after: SimDuration = after.iter().map(|c| c.latency).sum();
    println!(
        "after the zombie crashed: {} of {} swap-ins served from the local \
         mirror ({} per page) — degraded, never lost",
        backup,
        after.len(),
        total_after / after.len() as u64
    );
}
