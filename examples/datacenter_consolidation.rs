//! Datacenter-scale energy comparison: Neat vs Oasis vs ZombieStack on a
//! synthetic Google-style trace (a small Fig. 10).
//!
//! Run with `cargo run --release --example datacenter_consolidation`.

use zombieland::energy::MachineProfile;
use zombieland::simcore::report::Table;
use zombieland::simcore::SimDuration;
use zombieland::simulator::{simulate, PolicyKind, SimConfig};
use zombieland::trace::{ClusterTrace, TraceConfig};

fn main() {
    let trace = ClusterTrace::generate(TraceConfig {
        servers: 200,
        duration: SimDuration::from_days(1),
        seed: 42,
        mem_cpu_ratio: 1.0,
        avg_utilization: 0.25,
    });
    let modified = trace.modified();
    println!(
        "trace: {} servers, {} tasks, avg booked cpu {:.2}/server",
        trace.config().servers,
        trace.tasks().len(),
        trace.avg_booked_cpu() / trace.config().servers as f64
    );

    let mut table = Table::new(
        "Energy saving vs an always-on fleet (HP profile)",
        &["trace", "Neat", "Oasis", "ZombieStack"],
    );
    for (label, t) in [("original", &trace), ("modified (mem=2x cpu)", &modified)] {
        let run = |p: PolicyKind| simulate(t, &SimConfig::new(p, MachineProfile::hp()));
        let base = run(PolicyKind::AlwaysOn);
        let pct = |p: PolicyKind| format!("{:.0}%", run(p).savings_pct(&base));
        table.row(&[
            label.to_string(),
            pct(PolicyKind::Neat),
            pct(PolicyKind::Oasis),
            pct(PolicyKind::ZombieStack),
        ]);
    }
    table.print();

    let base = simulate(
        &modified,
        &SimConfig::new(PolicyKind::AlwaysOn, MachineProfile::hp()),
    );
    let z = simulate(
        &modified,
        &SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp()),
    );
    let total: f64 = z.state_seconds.iter().sum();
    println!(
        "ZombieStack on the modified trace: {:.0}% of host-time active, \
         {:.0}% zombie, {:.0}% asleep; {} migrations, {} wake-ups, \
         {:.0}% energy saved.",
        100.0 * z.state_seconds[0] / total,
        100.0 * z.state_seconds[1] / total,
        100.0 * z.state_seconds[2] / total,
        z.migrations,
        z.wakeups,
        z.savings_pct(&base)
    );
}
