//! A user VM running a memcached-like workload with half its memory on a
//! zombie server — the paper's RAM Extension mode versus an Explicit
//! Swap Device at the same split.
//!
//! Run with `cargo run --release --example rack_disaggregation`.

use zombieland::core::manager::PoolKind;
use zombieland::core::{Rack, RackConfig};
use zombieland::hypervisor::engine::{self, Backing, EngineConfig};
use zombieland::hypervisor::SwapBackend;
use zombieland::simcore::Bytes;
use zombieland::workloads::DataCaching;

fn rack_with_zombie() -> (Rack, zombieland::core::ServerId) {
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    rack.goto_zombie(ids[1]).expect("idle server");
    (rack, ids[0])
}

fn main() {
    let reserved = Bytes::gib(2);
    let wss = Bytes::mib(1536);
    let local = reserved.mul_f64(0.5); // ZombieStack's 50 % rule.

    // Baseline: everything local.
    let (mut rack, user) = rack_with_zombie();
    let mut w = DataCaching::new(wss.pages(), 7);
    let base_cfg = EngineConfig::ram_ext(reserved, reserved);
    let base = engine::run(
        &mut w,
        &base_cfg,
        Backing::Rack {
            rack: &mut rack,
            user,
            pool: PoolKind::Ext,
        },
    )
    .expect("baseline run");

    // RAM Extension at 50 % local.
    let (mut rack, user) = rack_with_zombie();
    rack.alloc_ext(user, reserved - local)
        .expect("pool has room");
    let mut w = DataCaching::new(wss.pages(), 7);
    let re_cfg = EngineConfig::ram_ext(reserved, local);
    let re = engine::run(
        &mut w,
        &re_cfg,
        Backing::Rack {
            rack: &mut rack,
            user,
            pool: PoolKind::Ext,
        },
    )
    .expect("RAM Ext run");

    // Explicit SD (remote RAM swap) at the same split.
    let (mut rack, user) = rack_with_zombie();
    rack.alloc_swap(user, reserved - local)
        .expect("best effort");
    let mut w = DataCaching::new(wss.pages(), 7);
    let esd_cfg = EngineConfig::explicit_sd(reserved, local, SwapBackend::RemoteRam);
    let esd = engine::run(
        &mut w,
        &esd_cfg,
        Backing::Rack {
            rack: &mut rack,
            user,
            pool: PoolKind::Swap,
        },
    )
    .expect("Explicit SD run");

    println!("Data Caching, {reserved:?} VM, {wss:?} working set, 50% local:");
    println!(
        "  all-local baseline : {} ({} faults)",
        base.exec_time, base.remote_faults
    );
    println!(
        "  RAM Ext (v1)       : {} ({} faults, +{:.2}%)",
        re.exec_time,
        re.remote_faults,
        re.penalty_pct(&base)
    );
    println!(
        "  Explicit SD (v2)   : {} ({} faults, +{:.2}%)",
        esd.exec_time,
        esd.remote_faults,
        esd.penalty_pct(&base)
    );
    println!(
        "\nRAM Ext wins because the guest is oblivious: the hypervisor \
         keeps hot pages local, while the Explicit-SD guest believes it \
         has only {local:?} of RAM and swaps aggressively (the paper's \
         §6.4 observation)."
    );
    assert!(re.exec_time <= esd.exec_time);
}
