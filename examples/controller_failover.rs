//! Fault tolerance: the secondary controller takes over after a primary
//! crash, and revoked remote pages survive via their local backups.
//!
//! Run with `cargo run --release --example controller_failover`.

use zombieland::core::manager::{PageLoc, PoolKind};
use zombieland::core::{Rack, RackConfig};
use zombieland::simcore::{Bytes, SimDuration, SimTime};

fn main() {
    let mut rack = Rack::new(RackConfig {
        servers: 3,
        ..RackConfig::default()
    });
    let ids = rack.server_ids();
    let (user, zombie) = (ids[0], ids[1]);

    // Build up state: a zombie lends memory, the user pages onto it.
    rack.goto_zombie(zombie).expect("idle server");
    rack.alloc_ext(user, Bytes::gib(1)).expect("pool has room");
    let mut handles = Vec::new();
    for _ in 0..32 {
        let (h, _) = rack.place_page(user, PoolKind::Ext).expect("slots free");
        handles.push(h);
    }
    println!(
        "placed {} pages on {zombie}; controller tracks {} allocated buffers",
        handles.len(),
        rack.db().buffers_of_user(user).len()
    );

    // --- 1. Primary controller crash ----------------------------------
    let t0 = SimTime::ZERO;
    rack.heartbeat(t0 + SimDuration::from_secs(1));
    rack.crash_primary();
    let failover_at = t0 + SimDuration::from_secs(10);
    assert!(rack.check_failover(failover_at), "heartbeat overdue");
    println!("primary silent for >3s: secondary promoted (mirrored state intact)");

    // The promoted controller keeps serving: another allocation works.
    let more = rack
        .alloc_ext(user, Bytes::mib(128))
        .expect("mirror has the state");
    println!("post-failover allocation: {} buffers", more.buffers.len());

    // --- 2. Zombie wake with revocation --------------------------------
    // The zombie reclaims everything; the user's pages relocate from
    // their asynchronous local backups (there is no other zombie, so they
    // fall back to the backup copies).
    let wake = rack.wake(zombie, None).expect("zombie sleeps");
    println!(
        "wake: {} buffers revoked, {} pages relocated, {} pages now served \
         from local backup",
        wake.revoked, wake.relocated_pages, wake.fallback_pages
    );

    // Every page is still readable — just slower.
    let mut backup_reads = 0;
    for &h in &handles {
        let loc = rack.manager(user).locate(h).expect("page alive");
        let cost = rack.fetch_page(user, h, false).expect("readable");
        if loc == PageLoc::LocalBackup {
            backup_reads += 1;
            assert_eq!(cost, rack.config().backup_read_4k);
        }
    }
    println!(
        "all {} pages still readable ({} from the slower backup path) — \
         \"reduced reliability in the face of remote server crashes\" \
         addressed by the paper's mirroring design.",
        handles.len(),
        backup_reads
    );
}
