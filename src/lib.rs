//! Zombieland: practical and energy-efficient memory disaggregation.
//!
//! This is the umbrella crate of the Zombieland workspace, a full Rust
//! reproduction of *"Welcome to Zombieland: Practical and Energy-efficient
//! Memory Disaggregation in a Datacenter"* (Nitu et al., EuroSys 2018).
//! It re-exports every subsystem under a stable module path so examples and
//! downstream users can depend on a single crate:
//!
//! - [`simcore`] — virtual clock, event queue, deterministic RNG, units.
//! - [`mem`] — pages, frames, guest page tables, remote buffers.
//! - [`rdma`] — simulated RDMA fabric (one-sided verbs work against
//!   suspended nodes) and RPC-over-RDMA.
//! - [`acpi`] — platform power model with the new zombie (Sz) sleep state.
//! - [`energy`] — machine energy profiles, the paper's Eq. 1, power curves.
//! - [`trace`] — synthetic Google-cluster-like traces and motivation
//!   datasets.
//! - [`core`] — the paper's contribution: rack-level memory disaggregation
//!   (global memory controller, remote memory managers, zombie pool).
//! - [`hypervisor`] — KVM-like hypervisor paging with RAM Extension and
//!   Explicit Swap Device remote-memory modes.
//! - [`workloads`] — the evaluation's micro- and macro-benchmark models.
//! - [`cloud`] — ZombieStack: placement, consolidation, migration, plus the
//!   Neat and Oasis baselines.
//! - [`simulator`] — datacenter-scale energy simulation.
//! - [`obs`] — deterministic observability: sim-time trace events, metric
//!   registries, JSONL export.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture
//! and the per-experiment index.

pub use zombieland_acpi as acpi;
pub use zombieland_cloud as cloud;
pub use zombieland_core as core;
pub use zombieland_energy as energy;
pub use zombieland_hypervisor as hypervisor;
pub use zombieland_mem as mem;
pub use zombieland_obs as obs;
pub use zombieland_rdma as rdma;
pub use zombieland_simcore as simcore;
pub use zombieland_simulator as simulator;
pub use zombieland_trace as trace;
pub use zombieland_workloads as workloads;
