#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings -W clippy::perf"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::perf

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> observability smoke (trace export parses and is non-empty)"
ZL_TRACE=$(mktemp /tmp/zl-trace.XXXXXX.jsonl)
trap 'rm -f "$ZL_TRACE"' EXIT
./target/release/zombieland-cli --obs-level full --trace-out "$ZL_TRACE" \
    experiment fig9 > /dev/null
./target/release/zombieland-cli validate-trace "$ZL_TRACE"

echo "==> bench smoke (tiny grid emits a well-formed BENCH json)"
ZL_BENCH=$(mktemp /tmp/zl-bench.XXXXXX.json)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH"' EXIT
./target/release/zombieland-cli bench --quick --servers 24 --scale 0.02 \
    --jobs 1 --out "$ZL_BENCH" > /dev/null
grep -q '"schema": "zombieland-bench-v1"' "$ZL_BENCH"
grep -q '"wall_ns"' "$ZL_BENCH"

echo "==> scaling smoke (table1 output is byte-identical at jobs=1 and jobs=2)"
ZL_J1=$(mktemp /tmp/zl-jobs1.XXXXXX.txt)
ZL_J2=$(mktemp /tmp/zl-jobs2.XXXXXX.txt)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2"' EXIT
./target/release/zombieland-cli experiment table1 --scale 0.02 --jobs 1 > "$ZL_J1"
./target/release/zombieland-cli experiment table1 --scale 0.02 --jobs 2 > "$ZL_J2"
if ! cmp "$ZL_J1" "$ZL_J2"; then
    echo "verify: FAIL — parallel fan-out changed the table1 report" >&2
    exit 1
fi

echo "verify: OK"
