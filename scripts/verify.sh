#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "verify: OK"
