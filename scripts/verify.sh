#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings -W clippy::perf"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::perf

echo "==> determinism lint (wall-clock reads only in telemetry/profiling/load modules)"
# The sim-time wall: deterministic code must never read the host clock.
# Instant/SystemTime are allowed only where wall time IS the measurement
# — the profiler, the replay load harness, zlctl's top loop, and the CLI
# artifact stamps / bench timers.
WALL_ALLOW='^crates/(obs/src/profile\.rs|obs/src/telemetry\.rs|daemon/src/replay\.rs|daemon/src/bin/zlctl\.rs|bench/src/bin/zombieland\.rs|bench/benches/)'
if grep -rn --include='*.rs' -E 'Instant::now|SystemTime::now' crates \
    | grep -Ev "$WALL_ALLOW"; then
    echo "verify: FAIL — wall-clock read outside the allowlisted telemetry/profiling modules" >&2
    exit 1
fi

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> observability smoke (trace export parses and is non-empty)"
ZL_TRACE=$(mktemp /tmp/zl-trace.XXXXXX.jsonl)
trap 'rm -f "$ZL_TRACE"' EXIT
./target/release/zombieland-cli --obs-level full --trace-out "$ZL_TRACE" \
    experiment fig9 > /dev/null
./target/release/zombieland-cli validate-trace "$ZL_TRACE"

echo "==> bench smoke (tiny grid emits a well-formed BENCH json, no bogus regression)"
ZL_BENCH=$(mktemp /tmp/zl-bench.XXXXXX.json)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH"' EXIT
./target/release/zombieland-cli bench --quick --servers 24 --scale 0.02 \
    --jobs 2 --out "$ZL_BENCH" > /dev/null
grep -q '"schema": "zombieland-bench-v1"' "$ZL_BENCH"
grep -q '"wall_ns"' "$ZL_BENCH"
grep -q '"regression"' "$ZL_BENCH"
# The REGRESSION flag must only fire when the host could actually run
# the workers concurrently; on capped hosts it stays false by design.
if grep -q '"regression": true' "$ZL_BENCH"; then
    echo "verify: FAIL — bench flagged a parallel scaling regression" >&2
    exit 1
fi

echo "==> scaling regression gate (jobs>1 must not run slower than jobs=1 on parallel hosts)"
# ROADMAP item 4: once the host can actually run workers concurrently,
# fanning out must never lose to the serial loop. Single-core containers
# (host_parallelism 1) cannot express a meaningful speedup, so the gate
# is a no-op there rather than a flaky failure.
ZL_HP=$(grep -m1 -o '"host_parallelism": [0-9]*' "$ZL_BENCH" | awk '{ print $2 }')
if [ "${ZL_HP:-1}" -gt 1 ]; then
    if ! grep -o '"speedup_vs_jobs1": [0-9.]*' "$ZL_BENCH" \
        | awk '{ if ($2 + 0 < 1.0) bad = 1 } END { exit bad }'; then
        echo "verify: FAIL — a jobs>1 grid ran slower than jobs=1 on a parallel host" >&2
        exit 1
    fi
fi

echo "==> scaling smoke (table1 output is byte-identical at jobs=1 and jobs=2)"
ZL_J1=$(mktemp /tmp/zl-jobs1.XXXXXX.txt)
ZL_J2=$(mktemp /tmp/zl-jobs2.XXXXXX.txt)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2"' EXIT
./target/release/zombieland-cli experiment table1 --scale 0.02 --jobs 1 > "$ZL_J1"
./target/release/zombieland-cli experiment table1 --scale 0.02 --jobs 2 > "$ZL_J2"
if ! cmp "$ZL_J1" "$ZL_J2"; then
    echo "verify: FAIL — parallel fan-out changed the table1 report" >&2
    exit 1
fi

echo "==> scenario smoke (--scenario file matches the equivalent ZL_* env run)"
ZL_SCEN=$(mktemp /tmp/zl-scenario.XXXXXX.txt)
ZL_ENV=$(mktemp /tmp/zl-env.XXXXXX.txt)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2" "$ZL_SCEN" "$ZL_ENV"' EXIT
./target/release/zombieland-cli --scenario scenarios/smoke.toml \
    experiment table1 > "$ZL_SCEN"
ZL_SCALE=0.02 ZL_JOBS=1 ./target/release/zombieland-cli \
    experiment table1 > "$ZL_ENV"
if ! cmp "$ZL_SCEN" "$ZL_ENV"; then
    echo "verify: FAIL — scenario-file config diverged from the ZL_* env path" >&2
    exit 1
fi
if ./target/release/zombieland-cli --scenario /nonexistent.toml \
    experiment table1 > /dev/null 2>&1; then
    echo "verify: FAIL — unreadable --scenario file must be an error" >&2
    exit 1
fi

echo "==> sharding smoke (--shards 2 report bytes match the serial loop)"
ZL_S1=$(mktemp /tmp/zl-shards1.XXXXXX.txt)
ZL_S2=$(mktemp /tmp/zl-shards2.XXXXXX.txt)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2" "$ZL_SCEN" "$ZL_ENV" \
     "$ZL_S1" "$ZL_S2"' EXIT
ZL_RACKS=6 ./target/release/zombieland-cli --shards 1 simulate \
    --servers 120 --days 1 --policy zombiestack --jobs 1 > "$ZL_S1"
ZL_RACKS=6 ./target/release/zombieland-cli --shards 2 simulate \
    --servers 120 --days 1 --policy zombiestack --jobs 2 > "$ZL_S2"
if ! cmp "$ZL_S1" "$ZL_S2"; then
    echo "verify: FAIL — sharded event loop diverged from the serial loop" >&2
    exit 1
fi
if ./target/release/zombieland-cli --shards 0 simulate --servers 24 --days 1 \
    > /dev/null 2>&1; then
    echo "verify: FAIL — --shards 0 must be an error" >&2
    exit 1
fi

echo "==> streaming-memory guard (paper-preset bench bounds the resident event queue)"
ZL_PAPER=$(mktemp /tmp/zl-paper.XXXXXX.json)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2" "$ZL_SCEN" "$ZL_ENV" \
     "$ZL_S1" "$ZL_S2" "$ZL_PAPER"' EXIT
# ZL_VALIDATE=1 arms the in-loop assertion that no more than one chunk of
# the trace is ever resident; the JSON check then pins the recorded peak
# to chunk size + 1 (the in-flight consolidation tick).
ZL_VALIDATE=1 ./target/release/zombieland-cli bench --paper --servers 120 \
    --days 1 --jobs 2 --out "$ZL_PAPER" > /dev/null
grep -q '"name": "paper"' "$ZL_PAPER"
grep -q '"events_per_sec"' "$ZL_PAPER"
if ! grep -o '"peak_event_queue_len": [0-9]*' "$ZL_PAPER" \
    | awk '{ n++; if ($2 > 65537) bad = 1 } END { exit (bad || n < 2) }'; then
    echo "verify: FAIL — event queue peak exceeds one streaming chunk" >&2
    exit 1
fi

echo "==> scenario gallery smoke (every scenarios/*.toml runs and matches its golden)"
ZL_GAL=$(mktemp /tmp/zl-gallery.XXXXXX.txt)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2" "$ZL_SCEN" "$ZL_ENV" \
     "$ZL_S1" "$ZL_S2" "$ZL_PAPER" "$ZL_GAL"' EXIT
for scen in scenarios/*.toml; do
    name=$(basename "$scen" .toml)
    # The 48x1 grid keeps even paper_full.toml (whose servers/days the
    # explicit flags override) cheap enough for CI; racks/shards/backend/
    # generations still come from the file.
    ./target/release/zombieland-cli --scenario "$scen" simulate \
        --servers 48 --days 1 --policy zombiestack --jobs 1 > "$ZL_GAL"
    golden="tests/golden/scenarios/$name.txt"
    if [ -f "$golden" ]; then
        if ! cmp "$ZL_GAL" "$golden"; then
            echo "verify: FAIL — scenario $name drifted from $golden" >&2
            exit 1
        fi
    else
        echo "    (no golden for $name; ran clean, skipping cmp)"
    fi
done

echo "==> backend smoke (--backend cxl runs, --list-backends names the registry)"
ZL_BK=$(./target/release/zombieland-cli --list-backends)
for key in rdma cxl; do
    if ! grep -q "$key" <<< "$ZL_BK"; then
        echo "verify: FAIL — --list-backends is missing '$key'" >&2
        exit 1
    fi
done
if ./target/release/zombieland-cli --backend nosuchfabric simulate \
    --servers 24 --days 1 > /dev/null 2>&1; then
    echo "verify: FAIL — unknown --backend must be an error" >&2
    exit 1
fi
# A typo must come back with a did-you-mean hint (the CLI exits
# non-zero here by design, so capture rather than pipe under pipefail).
ZL_HINT=$(./target/release/zombieland-cli --backend xcl simulate \
    --servers 24 --days 1 2>&1 || true)
if ! grep -q 'did you mean "cxl"' <<< "$ZL_HINT"; then
    echo "verify: FAIL — near-miss --backend should suggest 'cxl'" >&2
    exit 1
fi
ZL_CXL=$(mktemp /tmp/zl-cxl.XXXXXX.txt)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2" "$ZL_SCEN" "$ZL_ENV" \
     "$ZL_S1" "$ZL_S2" "$ZL_PAPER" "$ZL_GAL" "$ZL_CXL"' EXIT
./target/release/zombieland-cli --backend cxl simulate --servers 48 --days 1 \
    --policy zombiestack --jobs 1 > "$ZL_CXL"
# The shared tier retires the zombie state entirely.
if ! grep -q 'zombie 0%' "$ZL_CXL"; then
    echo "verify: FAIL — --backend cxl still reports zombie time" >&2
    cat "$ZL_CXL" >&2
    exit 1
fi

echo "==> policy registry smoke (--list-policies names every registered policy)"
ZL_POL=$(./target/release/zombieland-cli --list-policies)
for key in alwayson neat oasis zombiestack noconsolidate; do
    if ! grep -q "$key" <<< "$ZL_POL"; then
        echo "verify: FAIL — --list-policies is missing '$key'" >&2
        exit 1
    fi
done
if ./target/release/zombieland-cli simulate --policy nosuchpolicy \
    > /dev/null 2>&1; then
    echo "verify: FAIL — unknown --policy must be an error" >&2
    exit 1
fi

echo "==> daemon smoke (zombied serves all seven ops; same-seed replays export identical metrics)"
ZL_DIR=$(mktemp -d /tmp/zl-daemon.XXXXXX)
ZOMBIED_PID=""
trap '[ -n "${ZOMBIED_PID:-}" ] && kill "$ZOMBIED_PID" 2>/dev/null || true; \
     rm -rf "$ZL_DIR"; \
     rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2" "$ZL_SCEN" "$ZL_ENV" \
     "$ZL_S1" "$ZL_S2" "$ZL_PAPER"' EXIT
ZL_EP="unix:$ZL_DIR/zombied.sock"
./target/release/zombied --listen "$ZL_EP" --servers 8 --seed 11 \
    > "$ZL_DIR/zombied.log" 2>&1 &
ZOMBIED_PID=$!
for _ in $(seq 1 50); do
    [ -S "$ZL_DIR/zombied.sock" ] && break
    sleep 0.1
done
if ! [ -S "$ZL_DIR/zombied.sock" ]; then
    echo "verify: FAIL — zombied did not come up" >&2
    cat "$ZL_DIR/zombied.log" >&2
    exit 1
fi
# One request of each of the seven control-plane ops. zlctl exits 0 for
# any well-formed server answer, so a hung or crashed daemon fails here.
./target/release/zlctl --connect "$ZL_EP" alloc-ext 1 128 > /dev/null
./target/release/zlctl --connect "$ZL_EP" alloc-swap 1 64 > /dev/null
./target/release/zlctl --connect "$ZL_EP" goto-zombie 7 2 > /dev/null
./target/release/zlctl --connect "$ZL_EP" free-mem 7 > /dev/null
./target/release/zlctl --connect "$ZL_EP" reclaim 7 1 > /dev/null
./target/release/zlctl --connect "$ZL_EP" lru-zombie > /dev/null
./target/release/zlctl --connect "$ZL_EP" us-reclaim 1 > /dev/null
# Two same-seed replay bursts: the exported metric registries must be
# byte-identical (decisions are modeled, not interleaving-dependent).
./target/release/zombieland-cli --metrics-out "$ZL_DIR/m1.json" replay \
    --connect "$ZL_EP" --requests 2000 --clients 2 --seed 9 --servers 8 \
    --out "$ZL_DIR/r1.json" > /dev/null
./target/release/zombieland-cli --metrics-out "$ZL_DIR/m2.json" replay \
    --connect "$ZL_EP" --requests 2000 --clients 2 --seed 9 --servers 8 \
    --out "$ZL_DIR/r2.json" > /dev/null
if ! cmp "$ZL_DIR/m1.json" "$ZL_DIR/m2.json"; then
    echo "verify: FAIL — same-seed replays diverged in exported metrics" >&2
    exit 1
fi
# The machine-readable replay artifact carries the run's vital signs.
grep -q '"schema": "zombieland-replay-v1"' "$ZL_DIR/r1.json"
grep -q '"requests": 2000' "$ZL_DIR/r1.json"
grep -q '"throughput_rps"' "$ZL_DIR/r1.json"
grep -q '"host_parallelism"' "$ZL_DIR/r1.json"
# Telemetry: the per-op counters scraped over the STATS op must equal
# exactly the ops served so far (7 one-shot zlctl ops + 2×2000 replay
# requests; STATS frames themselves are not ops).
./target/release/zlctl --connect "$ZL_EP" stats > "$ZL_DIR/s1.txt"
grep -q '^# TYPE zombied_ops_applied counter' "$ZL_DIR/s1.txt"
grep -q '^# TYPE zombied_decision_ns histogram' "$ZL_DIR/s1.txt"
SUM1=$(awk '/^zombied_op_/ { s += $2 } END { print s + 0 }' "$ZL_DIR/s1.txt")
if [ "$SUM1" -ne 4007 ]; then
    echo "verify: FAIL — scraped op counters sum to $SUM1, expected 4007" >&2
    exit 1
fi
# Scraping again must be monotone and count the scrape itself.
./target/release/zlctl --connect "$ZL_EP" stats > "$ZL_DIR/s2.txt"
SUM2=$(awk '/^zombied_op_/ { s += $2 } END { print s + 0 }' "$ZL_DIR/s2.txt")
if [ "$SUM2" -lt "$SUM1" ]; then
    echo "verify: FAIL — op counters went backwards across scrapes ($SUM1 -> $SUM2)" >&2
    exit 1
fi
SCRAPES=$(awk '$1 == "zombied_stats_scrapes" { print $2 }' "$ZL_DIR/s2.txt")
if [ "${SCRAPES:-0}" -lt 2 ]; then
    echo "verify: FAIL — zombied_stats_scrapes is '${SCRAPES:-}', expected >= 2" >&2
    exit 1
fi
# `top` renders its header plus one delta row per frame.
./target/release/zlctl --connect "$ZL_EP" top --interval-ms 100 --frames 2 \
    > "$ZL_DIR/top.txt"
if [ "$(wc -l < "$ZL_DIR/top.txt")" -ne 3 ]; then
    echo "verify: FAIL — zlctl top did not render 2 delta frames" >&2
    cat "$ZL_DIR/top.txt" >&2
    exit 1
fi
grep -q 'req/s' "$ZL_DIR/top.txt"
./target/release/zlctl --connect "$ZL_EP" shutdown > /dev/null
wait "$ZOMBIED_PID"
ZOMBIED_PID=""
if [ -S "$ZL_DIR/zombied.sock" ]; then
    echo "verify: FAIL — zombied left its socket file behind" >&2
    exit 1
fi

echo "==> profile smoke (--profile emits a phase table and a PROFILE json covering the run)"
ZL_PROF=$(mktemp -d /tmp/zl-profile.XXXXXX)
trap '[ -n "${ZOMBIED_PID:-}" ] && kill "$ZOMBIED_PID" 2>/dev/null || true; \
     rm -rf "$ZL_DIR" "$ZL_PROF"; \
     rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2" "$ZL_SCEN" "$ZL_ENV" \
     "$ZL_S1" "$ZL_S2" "$ZL_PAPER"' EXIT
ZL_ROOT=$PWD
(cd "$ZL_PROF" && "$ZL_ROOT/target/release/zombieland-cli" \
    experiment fig8 --scale 0.02 --profile > run.txt)
grep -q 'Profile: wall time by phase' "$ZL_PROF/run.txt"
ZL_PROF_JSON=$(echo "$ZL_PROF"/PROFILE_*.json)
grep -q '"schema": "zombieland-profile-v1"' "$ZL_PROF_JSON"
grep -q '"phase": "fault_batch"' "$ZL_PROF_JSON"
# Self-time spans must partition the run: phase wall times sum to within
# 10% of total wall time (each nanosecond attributed at most once).
ZL_COV=$(grep -o '"coverage_pct": [0-9.]*' "$ZL_PROF_JSON" | awk '{ print $2 }')
if ! awk -v c="${ZL_COV:-0}" 'BEGIN { exit !(c >= 90.0 && c <= 100.5) }'; then
    echo "verify: FAIL — profile coverage is ${ZL_COV:-unset}%, want ~100%" >&2
    exit 1
fi

echo "verify: OK"
