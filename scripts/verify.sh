#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings -W clippy::perf"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::perf

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> observability smoke (trace export parses and is non-empty)"
ZL_TRACE=$(mktemp /tmp/zl-trace.XXXXXX.jsonl)
trap 'rm -f "$ZL_TRACE"' EXIT
./target/release/zombieland-cli --obs-level full --trace-out "$ZL_TRACE" \
    experiment fig9 > /dev/null
./target/release/zombieland-cli validate-trace "$ZL_TRACE"

echo "==> bench smoke (tiny grid emits a well-formed BENCH json)"
ZL_BENCH=$(mktemp /tmp/zl-bench.XXXXXX.json)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH"' EXIT
./target/release/zombieland-cli bench --quick --servers 24 --scale 0.02 \
    --jobs 1 --out "$ZL_BENCH" > /dev/null
grep -q '"schema": "zombieland-bench-v1"' "$ZL_BENCH"
grep -q '"wall_ns"' "$ZL_BENCH"

echo "==> scaling smoke (table1 output is byte-identical at jobs=1 and jobs=2)"
ZL_J1=$(mktemp /tmp/zl-jobs1.XXXXXX.txt)
ZL_J2=$(mktemp /tmp/zl-jobs2.XXXXXX.txt)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2"' EXIT
./target/release/zombieland-cli experiment table1 --scale 0.02 --jobs 1 > "$ZL_J1"
./target/release/zombieland-cli experiment table1 --scale 0.02 --jobs 2 > "$ZL_J2"
if ! cmp "$ZL_J1" "$ZL_J2"; then
    echo "verify: FAIL — parallel fan-out changed the table1 report" >&2
    exit 1
fi

echo "==> scenario smoke (--scenario file matches the equivalent ZL_* env run)"
ZL_SCEN=$(mktemp /tmp/zl-scenario.XXXXXX.txt)
ZL_ENV=$(mktemp /tmp/zl-env.XXXXXX.txt)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2" "$ZL_SCEN" "$ZL_ENV"' EXIT
./target/release/zombieland-cli --scenario scenarios/smoke.toml \
    experiment table1 > "$ZL_SCEN"
ZL_SCALE=0.02 ZL_JOBS=1 ./target/release/zombieland-cli \
    experiment table1 > "$ZL_ENV"
if ! cmp "$ZL_SCEN" "$ZL_ENV"; then
    echo "verify: FAIL — scenario-file config diverged from the ZL_* env path" >&2
    exit 1
fi
if ./target/release/zombieland-cli --scenario /nonexistent.toml \
    experiment table1 > /dev/null 2>&1; then
    echo "verify: FAIL — unreadable --scenario file must be an error" >&2
    exit 1
fi

echo "==> policy registry smoke (--list-policies names every registered policy)"
ZL_POL=$(./target/release/zombieland-cli --list-policies)
for key in alwayson neat oasis zombiestack noconsolidate; do
    if ! grep -q "$key" <<< "$ZL_POL"; then
        echo "verify: FAIL — --list-policies is missing '$key'" >&2
        exit 1
    fi
done
if ./target/release/zombieland-cli simulate --policy nosuchpolicy \
    > /dev/null 2>&1; then
    echo "verify: FAIL — unknown --policy must be an error" >&2
    exit 1
fi

echo "verify: OK"
