#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings -W clippy::perf"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::perf

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> observability smoke (trace export parses and is non-empty)"
ZL_TRACE=$(mktemp /tmp/zl-trace.XXXXXX.jsonl)
trap 'rm -f "$ZL_TRACE"' EXIT
./target/release/zombieland-cli --obs-level full --trace-out "$ZL_TRACE" \
    experiment fig9 > /dev/null
./target/release/zombieland-cli validate-trace "$ZL_TRACE"

echo "==> bench smoke (tiny grid emits a well-formed BENCH json)"
ZL_BENCH=$(mktemp /tmp/zl-bench.XXXXXX.json)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH"' EXIT
./target/release/zombieland-cli bench --quick --servers 24 --scale 0.02 \
    --jobs 1 --out "$ZL_BENCH" > /dev/null
grep -q '"schema": "zombieland-bench-v1"' "$ZL_BENCH"
grep -q '"wall_ns"' "$ZL_BENCH"

echo "verify: OK"
