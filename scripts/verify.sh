#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings -W clippy::perf"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::perf

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> observability smoke (trace export parses and is non-empty)"
ZL_TRACE=$(mktemp /tmp/zl-trace.XXXXXX.jsonl)
trap 'rm -f "$ZL_TRACE"' EXIT
./target/release/zombieland-cli --obs-level full --trace-out "$ZL_TRACE" \
    experiment fig9 > /dev/null
./target/release/zombieland-cli validate-trace "$ZL_TRACE"

echo "==> bench smoke (tiny grid emits a well-formed BENCH json, no bogus regression)"
ZL_BENCH=$(mktemp /tmp/zl-bench.XXXXXX.json)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH"' EXIT
./target/release/zombieland-cli bench --quick --servers 24 --scale 0.02 \
    --jobs 2 --out "$ZL_BENCH" > /dev/null
grep -q '"schema": "zombieland-bench-v1"' "$ZL_BENCH"
grep -q '"wall_ns"' "$ZL_BENCH"
grep -q '"regression"' "$ZL_BENCH"
# The REGRESSION flag must only fire when the host could actually run
# the workers concurrently; on capped hosts it stays false by design.
if grep -q '"regression": true' "$ZL_BENCH"; then
    echo "verify: FAIL — bench flagged a parallel scaling regression" >&2
    exit 1
fi

echo "==> scaling smoke (table1 output is byte-identical at jobs=1 and jobs=2)"
ZL_J1=$(mktemp /tmp/zl-jobs1.XXXXXX.txt)
ZL_J2=$(mktemp /tmp/zl-jobs2.XXXXXX.txt)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2"' EXIT
./target/release/zombieland-cli experiment table1 --scale 0.02 --jobs 1 > "$ZL_J1"
./target/release/zombieland-cli experiment table1 --scale 0.02 --jobs 2 > "$ZL_J2"
if ! cmp "$ZL_J1" "$ZL_J2"; then
    echo "verify: FAIL — parallel fan-out changed the table1 report" >&2
    exit 1
fi

echo "==> scenario smoke (--scenario file matches the equivalent ZL_* env run)"
ZL_SCEN=$(mktemp /tmp/zl-scenario.XXXXXX.txt)
ZL_ENV=$(mktemp /tmp/zl-env.XXXXXX.txt)
trap 'rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2" "$ZL_SCEN" "$ZL_ENV"' EXIT
./target/release/zombieland-cli --scenario scenarios/smoke.toml \
    experiment table1 > "$ZL_SCEN"
ZL_SCALE=0.02 ZL_JOBS=1 ./target/release/zombieland-cli \
    experiment table1 > "$ZL_ENV"
if ! cmp "$ZL_SCEN" "$ZL_ENV"; then
    echo "verify: FAIL — scenario-file config diverged from the ZL_* env path" >&2
    exit 1
fi
if ./target/release/zombieland-cli --scenario /nonexistent.toml \
    experiment table1 > /dev/null 2>&1; then
    echo "verify: FAIL — unreadable --scenario file must be an error" >&2
    exit 1
fi

echo "==> policy registry smoke (--list-policies names every registered policy)"
ZL_POL=$(./target/release/zombieland-cli --list-policies)
for key in alwayson neat oasis zombiestack noconsolidate; do
    if ! grep -q "$key" <<< "$ZL_POL"; then
        echo "verify: FAIL — --list-policies is missing '$key'" >&2
        exit 1
    fi
done
if ./target/release/zombieland-cli simulate --policy nosuchpolicy \
    > /dev/null 2>&1; then
    echo "verify: FAIL — unknown --policy must be an error" >&2
    exit 1
fi

echo "==> daemon smoke (zombied serves all seven ops; same-seed replays export identical metrics)"
ZL_DIR=$(mktemp -d /tmp/zl-daemon.XXXXXX)
ZOMBIED_PID=""
trap '[ -n "${ZOMBIED_PID:-}" ] && kill "$ZOMBIED_PID" 2>/dev/null || true; \
     rm -rf "$ZL_DIR"; \
     rm -f "$ZL_TRACE" "$ZL_BENCH" "$ZL_J1" "$ZL_J2" "$ZL_SCEN" "$ZL_ENV"' EXIT
ZL_EP="unix:$ZL_DIR/zombied.sock"
./target/release/zombied --listen "$ZL_EP" --servers 8 --seed 11 \
    > "$ZL_DIR/zombied.log" 2>&1 &
ZOMBIED_PID=$!
for _ in $(seq 1 50); do
    [ -S "$ZL_DIR/zombied.sock" ] && break
    sleep 0.1
done
if ! [ -S "$ZL_DIR/zombied.sock" ]; then
    echo "verify: FAIL — zombied did not come up" >&2
    cat "$ZL_DIR/zombied.log" >&2
    exit 1
fi
# One request of each of the seven control-plane ops. zlctl exits 0 for
# any well-formed server answer, so a hung or crashed daemon fails here.
./target/release/zlctl --connect "$ZL_EP" alloc-ext 1 128 > /dev/null
./target/release/zlctl --connect "$ZL_EP" alloc-swap 1 64 > /dev/null
./target/release/zlctl --connect "$ZL_EP" goto-zombie 7 2 > /dev/null
./target/release/zlctl --connect "$ZL_EP" free-mem 7 > /dev/null
./target/release/zlctl --connect "$ZL_EP" reclaim 7 1 > /dev/null
./target/release/zlctl --connect "$ZL_EP" lru-zombie > /dev/null
./target/release/zlctl --connect "$ZL_EP" us-reclaim 1 > /dev/null
# Two same-seed replay bursts: the exported metric registries must be
# byte-identical (decisions are modeled, not interleaving-dependent).
./target/release/zombieland-cli --metrics-out "$ZL_DIR/m1.json" replay \
    --connect "$ZL_EP" --requests 2000 --clients 2 --seed 9 --servers 8 > /dev/null
./target/release/zombieland-cli --metrics-out "$ZL_DIR/m2.json" replay \
    --connect "$ZL_EP" --requests 2000 --clients 2 --seed 9 --servers 8 > /dev/null
if ! cmp "$ZL_DIR/m1.json" "$ZL_DIR/m2.json"; then
    echo "verify: FAIL — same-seed replays diverged in exported metrics" >&2
    exit 1
fi
./target/release/zlctl --connect "$ZL_EP" shutdown > /dev/null
wait "$ZOMBIED_PID"
ZOMBIED_PID=""
if [ -S "$ZL_DIR/zombied.sock" ]; then
    echo "verify: FAIL — zombied left its socket file behind" >&2
    exit 1
fi

echo "verify: OK"
